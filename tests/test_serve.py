"""The plan-serving layer's three contracts, end to end.

Warm-path fast serving (a cache hit never constructs an engine
resolution — the ``engine_resolutions`` tripwire stays flat and the
bytes are identical to a direct resolve), single-flight coalescing
(K identical concurrent requests cost exactly one resolution), and a
disciplined wire surface (single-line 400s, clean drain on the first
signal, forced exit-75 on the second).
"""

from __future__ import annotations

import asyncio
import copy
import json
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time
from types import SimpleNamespace

import pytest

from repro.plan import PlanArtifactCache, PlanEngine, PlanRequest
from repro.robustness.errors import TransientFaultError
from repro.serve import (
    PlanClient,
    PlanClientError,
    PlanEngineRegistry,
    PlanHTTPServer,
    PlanRequestError,
    PlanService,
    parse_plan_request,
    plan_bytes,
    split_plan_route,
)

ONE_HOUR = 3.6e3
ONE_MONTH = 2.592e6

BODY = {
    "methods": ["swim", "magnitude"],
    "nwc_targets": [0.0, 0.5],
    "technology": "pcm",
    "read_time": ONE_MONTH,
    "weight_bits": 4,
}


@pytest.fixture()
def mini_zoo(trained_lenet):
    """A ZooModel-shaped wrapper around the shared test LeNet."""
    model, data, accuracy = trained_lenet
    return SimpleNamespace(
        model=model,
        data=data,
        clean_accuracy=accuracy,
        spec=SimpleNamespace(key="lenet-test", weight_bits=4),
    )


def _engine(mini_zoo, sense=96, **cache_kwargs):
    cache_kwargs.setdefault("disk", False)
    return PlanEngine(
        mini_zoo.model,
        mini_zoo.data.train_x[:sense],
        mini_zoo.data.train_y[:sense],
        workload=mini_zoo.spec.key,
        cache=PlanArtifactCache(**cache_kwargs),
        curvature_batch_size=min(256, sense),
    )


def _body(**overrides):
    payload = {**BODY, **overrides}
    return json.dumps(payload).encode("utf-8")


@pytest.fixture()
def twin_zoo(mini_zoo):
    """A second distinct 'workload': same architecture, perturbed weights.

    Cheap stand-in for a real second zoo entry — a different model
    digest is all the registry's routing cares about.
    """
    model = copy.deepcopy(mini_zoo.model)
    param = next(iter(model.parameters()))
    param.data = param.data * 1.01 + 1e-3
    return SimpleNamespace(
        model=model,
        data=mini_zoo.data,
        spec=SimpleNamespace(key="lenet-twin", weight_bits=4),
    )


def _registry(mini_zoo, twin_zoo, **kwargs):
    """A two-workload registry over one shared memory-only cache."""
    zoos = {"lenet-test": mini_zoo, "lenet-twin": twin_zoo}

    def factory(workload, cache):
        zoo = zoos[workload]
        return PlanEngine(
            zoo.model,
            zoo.data.train_x[:96],
            zoo.data.train_y[:96],
            workload=workload,
            cache=cache,
            curvature_batch_size=96,
        )

    kwargs.setdefault("cache", PlanArtifactCache(disk=False))
    return PlanEngineRegistry(
        factory, workloads=("lenet-test", "lenet-twin"), **kwargs
    )


# --------------------------------------------------------------------- codec


class TestCodec:
    def test_parse_round_trip(self):
        request = parse_plan_request(_body())
        assert isinstance(request, PlanRequest)
        assert request.methods == ("swim", "magnitude")
        assert request.nwc_targets == (0.0, 0.5)
        assert request.technology == "pcm"
        assert request.read_time == ONE_MONTH
        assert request.weight_bits == 4

    @pytest.mark.parametrize("body", [
        b"not json",
        b"[1, 2]",
        json.dumps({**BODY, "frobnicate": 1}).encode(),
        json.dumps({**BODY, "methods": ["random"]}).encode(),
        json.dumps({**BODY, "nwc_targets": [1.5]}).encode(),
        json.dumps({"methods": ["swim"], "read_time": ONE_HOUR}).encode(),
        json.dumps({**BODY, "weight_bits": 0}).encode(),
    ])
    def test_malformed_bodies_raise_single_line(self, body):
        with pytest.raises(PlanRequestError) as excinfo:
            parse_plan_request(body)
        assert "\n" not in str(excinfo.value)


# ------------------------------------------------------------------- service


class TestPlanService:
    def test_coalescing_single_flight(self, mini_zoo):
        """K identical concurrent requests: exactly one engine resolution."""
        service = PlanService(_engine(mini_zoo))
        try:
            async def burst():
                return await asyncio.gather(
                    *(service.plan(_body()) for _ in range(8))
                )

            served = asyncio.run(burst())
        finally:
            service.close()

        assert service.counters["engine_resolutions"] == 1
        sources = sorted(plan.source for plan in served)
        assert sources.count("cold") == 1
        assert sources.count("coalesced") == 7
        assert len({plan.data for plan in served}) == 1
        assert len({plan.key for plan in served}) == 1
        assert service.counters["requests"] == 8

    def test_warm_path_is_passless_and_byte_identical(self, mini_zoo, tmp_path):
        """A warm hit replays stored bytes without any engine pass."""
        root = str(tmp_path / "serve-cache")
        cold_service = PlanService(_engine(mini_zoo, disk=True, root=root))
        try:
            cold = asyncio.run(cold_service.plan(_body()))
        finally:
            cold_service.close()
        assert cold.source == "cold"

        # A fresh engine + service over the same cache root: the warm
        # request must not touch the engine at all.
        warm_service = PlanService(_engine(mini_zoo, disk=True, root=root))
        try:
            warm = asyncio.run(warm_service.plan(_body()))
            assert warm.source == "warm"
            assert warm.key == cold.key
            assert warm.data == cold.data
            assert warm_service.counters["engine_resolutions"] == 0
            assert all(v == 0 for v in warm_service.engine.stats.values())

            # ... and byte-identical to a direct PlanEngine resolution.
            direct = _engine(mini_zoo).plan(parse_plan_request(_body()))
            assert warm.data == plan_bytes(direct)

            # fetch() replays the same bytes, also passlessly.
            fetched = warm_service.fetch(warm.key)
            assert fetched == warm.data
            assert warm_service.fetch("0" * 32) is None
            assert warm_service.fetch("not-a-key") is None
            assert warm_service.counters["engine_resolutions"] == 0
        finally:
            warm_service.close()

    def test_distinct_requests_do_not_coalesce(self, mini_zoo):
        service = PlanService(_engine(mini_zoo))
        try:
            async def two():
                return await asyncio.gather(
                    service.plan(_body(read_time=ONE_HOUR)),
                    service.plan(_body(read_time=ONE_MONTH)),
                )

            first, second = asyncio.run(two())
        finally:
            service.close()
        assert first.key != second.key
        assert service.counters["engine_resolutions"] == 2

    def test_bad_request_counted_and_raised(self, mini_zoo):
        service = PlanService(_engine(mini_zoo))
        try:
            with pytest.raises(PlanRequestError):
                asyncio.run(service.plan(b"not json"))
        finally:
            service.close()
        assert service.counters["bad_requests"] == 1
        assert service.counters["requests"] == 0

    def test_stats_shares_the_cache_code_path(self, mini_zoo):
        """/statsz's cache section is PlanArtifactCache.stats verbatim."""
        service = PlanService(_engine(mini_zoo))
        try:
            asyncio.run(service.plan(_body()))
            asyncio.run(service.plan(_body()))
            stats = service.stats()
        finally:
            service.close()
        assert stats["cache"] == service.cache.stats()
        assert stats["requests"]["warm"] == 1
        assert stats["requests"]["cold"] == 1
        assert stats["in_flight_coalesced"] == 0
        warm = stats["latency_ms"]["warm"]
        assert warm["count"] == 1 and warm["p50_ms"] is not None


# ------------------------------------------------------------- error counters


class TestResolveErrorCounters:
    def test_failed_resolution_counts_cold_and_riders(self, mini_zoo,
                                                      monkeypatch):
        """Error traffic is visible: requests/source/latency + errors.

        A failed cold resolution used to skip the counters entirely, so
        a server melting down looked idle in /statsz.  Both the cold
        requester and its coalesced riders must record.
        """
        service = PlanService(_engine(mini_zoo))

        def boom(request):
            raise RuntimeError("engine exploded")

        monkeypatch.setattr(service.engine, "plan", boom)
        try:
            async def burst():
                return await asyncio.gather(
                    *(service.plan(_body()) for _ in range(4)),
                    return_exceptions=True,
                )

            results = asyncio.run(burst())
        finally:
            service.close()

        assert all(isinstance(r, RuntimeError) for r in results)
        counters = service.counters
        assert counters["requests"] == 4
        assert counters["cold"] == 1
        assert counters["coalesced"] == 3
        assert counters["resolve_errors"] == 4
        assert counters["engine_resolutions"] == 1  # the attempt counts
        assert service.latency["cold"].count == 1
        assert service.latency["coalesced"].count == 3
        # The key is no longer in flight: a retry starts a fresh attempt.
        assert len(service._inflight) == 0

    def test_error_surfaces_as_500_over_http(self, mini_zoo, monkeypatch):
        service = PlanService(_engine(mini_zoo))

        def boom(request):
            raise RuntimeError("engine exploded")

        monkeypatch.setattr(service.engine, "plan", boom)
        with _ServerThread(service) as running:
            with PlanClient(port=running.port) as client:
                with pytest.raises(PlanClientError) as excinfo:
                    client.plan(BODY)
                assert excinfo.value.status == 500
                stats = client.statsz()
        assert stats["requests"]["resolve_errors"] == 1
        assert stats["requests"]["requests"] == 1


# ------------------------------------------------------------------- registry


class TestPlanEngineRegistry:
    def test_two_workload_routing_with_per_engine_tripwires(
            self, mini_zoo, twin_zoo):
        """One process, two workloads: routed plans, per-engine counters."""
        registry = _registry(mini_zoo, twin_zoo)
        try:
            async def drive():
                first = await registry.plan(_body(workload="lenet-test"))
                second = await registry.plan(_body(workload="lenet-twin"))
                warm_a = await registry.plan(_body(workload="lenet-test"))
                warm_b = await registry.plan(_body(workload="lenet-twin"))
                unrouted = await registry.plan(_body())  # default workload
                return first, second, warm_a, warm_b, unrouted

            first, second, warm_a, warm_b, unrouted = asyncio.run(drive())
        finally:
            registry.close()

        assert first.key != second.key
        assert first.data != second.data
        assert (warm_a.source, warm_b.source) == ("warm", "warm")
        assert warm_a.data == first.data and warm_b.data == second.data
        # Unrouted requests hit the default workload's warm plan.
        assert unrouted.source == "warm" and unrouted.key == first.key

        stats = registry.stats()
        for workload in ("lenet-test", "lenet-twin"):
            engine_stats = stats["engines"][workload]["requests"]
            assert engine_stats["engine_resolutions"] == 1
            assert engine_stats["cold"] == 1
        assert stats["engines"]["lenet-test"]["requests"]["warm"] == 2
        assert stats["requests"]["requests"] == 5
        assert stats["requests"]["engine_resolutions"] == 2

    def test_routed_plans_byte_identical_to_single_workload_servers(
            self, mini_zoo, twin_zoo):
        """The registry must not change what is served, only where."""
        registry = _registry(mini_zoo, twin_zoo)
        try:
            async def drive():
                return (
                    await registry.plan(_body(workload="lenet-test")),
                    await registry.plan(_body(workload="lenet-twin")),
                )

            routed_a, routed_b = asyncio.run(drive())
        finally:
            registry.close()

        for zoo, routed in ((mini_zoo, routed_a), (twin_zoo, routed_b)):
            single = PlanService(PlanEngine(
                zoo.model,
                zoo.data.train_x[:96],
                zoo.data.train_y[:96],
                workload=zoo.spec.key,
                cache=PlanArtifactCache(disk=False),
                curvature_batch_size=96,
            ))
            try:
                direct = asyncio.run(single.plan(_body()))
            finally:
                single.close()
            assert direct.key == routed.key
            assert direct.data == routed.data

    def test_single_flight_coalescing_is_per_engine(self, mini_zoo, twin_zoo):
        """N identical concurrent POSTs to either workload: 1 resolution each."""
        registry = _registry(mini_zoo, twin_zoo)
        try:
            async def burst():
                return await asyncio.gather(*(
                    registry.plan(_body(workload=workload))
                    for workload in ("lenet-test", "lenet-twin")
                    for _ in range(8)
                ))

            served = asyncio.run(burst())
        finally:
            registry.close()

        assert len({plan.key for plan in served}) == 2
        stats = registry.stats()
        for workload in ("lenet-test", "lenet-twin"):
            counters = stats["engines"][workload]["requests"]
            assert counters["engine_resolutions"] == 1
            assert counters["cold"] == 1
            assert counters["coalesced"] == 7

    def test_digest_routing(self, mini_zoo, twin_zoo):
        registry = _registry(mini_zoo, twin_zoo)
        try:
            async def drive():
                await registry.plan(_body(workload="lenet-twin"))
                digest = registry.service("lenet-twin").engine._model_digest
                routed = await registry.plan(_body(model=digest))
                return digest, routed

            digest, routed = asyncio.run(drive())
            assert routed.source == "warm"  # same engine, same key space
            rows = {
                row["workload"]: row for row in registry.models()["models"]
            }
            assert rows["lenet-twin"]["model"] == digest

            with pytest.raises(PlanRequestError) as excinfo:
                asyncio.run(registry.plan(_body(model="f" * 16)))
            assert "unknown model digest" in str(excinfo.value)
            assert registry.counters["bad_requests"] == 1
        finally:
            registry.close()

    def test_route_field_validation(self, mini_zoo, twin_zoo):
        registry = _registry(mini_zoo, twin_zoo)
        try:
            for body in (
                _body(workload="nope"),
                _body(workload=7),
                _body(model="not-a-digest"),
                _body(workload="lenet-test", model="f" * 16),
                b"not json",
            ):
                with pytest.raises(PlanRequestError):
                    asyncio.run(registry.plan(body))
            assert registry.counters["bad_requests"] == 5
        finally:
            registry.close()

    def test_models_schema(self, mini_zoo, twin_zoo):
        registry = _registry(mini_zoo, twin_zoo)
        try:
            listing = registry.models()
            assert listing["default"] == "lenet-test"
            assert listing["max_engines"] == 0
            assert [row["workload"] for row in listing["models"]] == [
                "lenet-test", "lenet-twin",
            ]
            # Nothing loaded yet: no digests (unknowable without paying
            # the load), no counters.
            for row in listing["models"]:
                assert row["loaded"] is False
                assert row["model"] is None
                assert row["requests"] is None

            asyncio.run(registry.plan(_body(workload="lenet-twin")))
            rows = {
                row["workload"]: row for row in registry.models()["models"]
            }
            assert rows["lenet-test"]["loaded"] is False
            twin = rows["lenet-twin"]
            assert twin["loaded"] is True
            assert re.fullmatch(r"[0-9a-f]{16}", twin["model"])
            assert twin["requests"]["cold"] == 1
            assert twin["requests"]["engine_resolutions"] == 1
        finally:
            registry.close()

    def test_engine_cap_lru_retirement(self, mini_zoo, twin_zoo):
        """Past the cap the least-recently-routed engine retires, drained."""
        registry = _registry(mini_zoo, twin_zoo, max_engines=1)
        try:
            first = asyncio.run(registry.plan(_body(workload="lenet-test")))
            survivor = registry.service("lenet-test")
            digest = survivor.engine._model_digest

            asyncio.run(registry.plan(_body(workload="lenet-twin")))
            assert list(registry._services) == ["lenet-twin"]
            assert registry.counters["engines_retired"] == 1
            # The retired executor is shut down (drained, not leaked).
            assert survivor._executor._shutdown

            # The retired digest still routes: the engine rebuilds lazily
            # and its plan replays warm from the shared cache — no new
            # resolution.
            again = asyncio.run(registry.plan(_body(model=digest)))
            assert again.source == "warm"
            assert again.data == first.data
            assert registry.counters["engines_loaded"] == 3
            assert registry.counters["engines_retired"] == 2
            rebuilt = registry.service("lenet-test")
            assert rebuilt is not survivor
            assert rebuilt.counters["engine_resolutions"] == 0
        finally:
            registry.close()

    def test_cap_validation(self, mini_zoo, twin_zoo, monkeypatch):
        from repro.robustness.errors import ScenarioConfigError
        from repro.serve import resolve_max_engines

        with pytest.raises(ScenarioConfigError):
            _registry(mini_zoo, twin_zoo, max_engines=-1)
        monkeypatch.setenv("REPRO_SERVE_MAX_ENGINES", "2")
        assert resolve_max_engines() == 2
        monkeypatch.setenv("REPRO_SERVE_MAX_ENGINES", "nope")
        with pytest.raises(ScenarioConfigError):
            resolve_max_engines()

    def test_split_route_strips_fields_only(self):
        """Routing fields never reach the per-engine request bytes."""
        (workload, model), remainder = split_plan_route(
            _body(workload="lenet-test")
        )
        assert (workload, model) == ("lenet-test", None)
        assert json.loads(remainder.decode("utf-8")) == BODY
        (workload, model), remainder = split_plan_route(_body())
        assert (workload, model) == (None, None)
        assert json.loads(remainder.decode("utf-8")) == BODY


# ---------------------------------------------------------------------- HTTP


class _ServerThread:
    """Run a PlanHTTPServer on a daemon thread with an ephemeral port."""

    def __init__(self, service):
        self.server = PlanHTTPServer(service, port=0)
        self._ready = threading.Event()
        self._loop = None
        self.result = None
        self.error = None
        self._thread = threading.Thread(target=self._main, daemon=True)

    def _main(self):
        async def serve():
            await self.server.start()
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            return await self.server.run(install_signals=False)

        try:
            self.result = asyncio.run(serve())
        except BaseException as exc:  # surfaced to the test thread
            self.error = exc
        finally:
            self._ready.set()

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(timeout=60), "server never came up"
        if self.error is not None:
            raise self.error
        return self

    def signal(self):
        try:
            self._loop.call_soon_threadsafe(self.server.request_shutdown)
        except RuntimeError:
            pass  # loop already closed — the server is already down

    def join(self, timeout=60):
        self._thread.join(timeout)
        assert not self._thread.is_alive(), "server did not shut down"

    def __exit__(self, *exc_info):
        if self._thread.is_alive():
            self.signal()
            self._thread.join(timeout=30)
        if self._thread.is_alive():
            self.signal()  # escalate: force-abandon the drain
            self._thread.join(timeout=60)

    @property
    def port(self):
        return self.server.port


class TestHTTP:
    @pytest.fixture()
    def served(self, mini_zoo):
        service = PlanService(_engine(mini_zoo))
        with _ServerThread(service) as running:
            with PlanClient(port=running.port) as client:
                yield SimpleNamespace(
                    client=client, running=running, service=service
                )

    def test_round_trip_and_warm_fetch(self, served):
        health = served.client.healthz()
        assert health["status"] == "ok"
        assert health["workload"] == "lenet-test"

        response = served.client.plan(BODY)
        assert response.source == "cold"
        assert re.fullmatch(r"[0-9a-f]{32}", response.key)
        assert response.plan["workload"] == "lenet-test"

        again = served.client.plan(BODY)
        assert again.source == "warm"
        assert again.data == response.data

        fetched = served.client.fetch(response.key)
        assert fetched.source == "warm"
        assert fetched.data == response.data
        assert served.client.fetch("0" * 32) is None

        stats = served.client.statsz()
        assert stats["requests"]["engine_resolutions"] == 1
        assert stats["requests"]["warm"] == 1
        # The cold resolve missed the plan artifact plus the engine's
        # stage artifacts; the warm hit added a memory hit, no misses.
        assert stats["cache"]["misses"] >= 1
        assert stats["cache"]["memory"] >= 1

    def test_malformed_body_is_single_line_400(self, served):
        with pytest.raises(PlanClientError) as excinfo:
            served.client.plan({"methods": ["random"]})
        assert excinfo.value.status == 400
        message = str(excinfo.value)
        assert "\n" not in message
        assert "Traceback" not in message

        with pytest.raises(PlanClientError) as excinfo:
            served.client.plan({**BODY, "frobnicate": 1})
        assert excinfo.value.status == 400

    def test_routing_errors(self, served):
        status, _, _ = served.client._request("GET", "/nope")
        assert status == 404
        status, _, _ = served.client._request("GET", "/v1/plan")
        assert status == 405
        status, _, _ = served.client._request("POST", "/healthz")
        assert status == 405

    def test_clean_drain_returns_zero(self, mini_zoo):
        service = PlanService(_engine(mini_zoo))
        with _ServerThread(service) as running:
            with PlanClient(port=running.port) as client:
                client.healthz()
            running.signal()
            running.join()
        assert running.error is None
        assert running.result == 0


class TestObservabilityHTTP:
    @pytest.fixture()
    def served(self, mini_zoo):
        service = PlanService(_engine(mini_zoo))
        with _ServerThread(service) as running:
            with PlanClient(port=running.port) as client:
                yield SimpleNamespace(
                    client=client, running=running, service=service
                )

    def test_metricsz_is_valid_and_covers_all_layers(self, served):
        from repro.obs.validate import validate_exposition

        served.client.plan(BODY)
        served.client.plan(BODY)  # one cold + one warm
        text = served.client.metricsz()
        assert list(validate_exposition(text)) == []
        # cache, service, and transport families all in one exposition
        assert 'repro_cache_hits_total{tier="memory"}' in text
        assert "repro_cache_misses_total" in text
        assert "repro_serve_requests_total" in text
        assert 'repro_serve_plans_total{workload="lenet-test",source="warm"} 1' in text
        assert "repro_serve_engine_resolutions_total" in text
        assert 'repro_serve_plan_seconds_bucket{workload="lenet-test",source="cold",le="+Inf"} 1' in text
        assert 'repro_http_requests_total{route="/v1/plan",status="200"} 2' in text
        assert 'repro_http_request_seconds_bucket{route="/v1/plan",le="+Inf"} 2' in text

    def test_metricsz_rejects_post(self, served):
        status, _, _ = served.client._request("POST", "/metricsz")
        assert status == 405

    def test_request_id_generated_and_echoed(self, served):
        import http.client as http_client

        served.client.healthz()
        generated = served.client.last_request_id
        assert generated and re.fullmatch(r"[0-9a-f]{16}", generated)
        assert served.client.last_server_ms is not None
        assert served.client.last_server_ms >= 0.0

        conn = http_client.HTTPConnection(
            "127.0.0.1", served.running.server.port, timeout=30
        )
        try:
            # A sane client id is echoed verbatim...
            conn.request("GET", "/healthz",
                         headers={"X-Request-Id": "trace-me.01"})
            response = conn.getresponse()
            response.read()
            assert response.getheader("X-Request-Id") == "trace-me.01"
            # ...an unsafe one (header-splitting material) is replaced.
            conn.request("GET", "/healthz",
                         headers={"X-Request-Id": "bad id é!"})
            response = conn.getresponse()
            response.read()
            echoed = response.getheader("X-Request-Id")
            assert echoed != "bad id é!"
            assert re.fullmatch(r"[0-9a-f]{16}", echoed)
        finally:
            conn.close()

    def test_http_span_carries_request_id(self, served):
        from repro.obs import TRACER, disable_tracing, enable_tracing

        enable_tracing()
        try:
            served.client.healthz()
            spans = [
                s for s in TRACER.drain() if s["name"] == "http.request"
            ]
        finally:
            disable_tracing()
            TRACER.drain()
        assert spans
        record = spans[-1]
        assert record["attrs"]["request_id"] == served.client.last_request_id
        assert record["attrs"]["route"] == "/healthz"
        assert record["attrs"]["status"] == 200

    def test_registry_metricsz_aggregates_engines(self, mini_zoo, twin_zoo):
        from repro.obs.validate import validate_exposition

        registry = _registry(mini_zoo, twin_zoo)
        with _ServerThread(registry) as running:
            with PlanClient(port=running.port) as client:
                client.plan({**BODY, "workload": "lenet-test"})
                client.plan({**BODY, "workload": "lenet-twin"})
                text = client.metricsz()
        assert list(validate_exposition(text)) == []
        assert 'repro_serve_plans_total{workload="lenet-test",source="cold"} 1' in text
        assert 'repro_serve_plans_total{workload="lenet-twin",source="cold"} 1' in text
        assert 'repro_serve_engines_total{event="loaded"} 2' in text


class TestForcedShutdown:
    def test_second_signal_abandons_and_raises(self):
        """A stuck in-flight request: drain hangs, second signal forces."""
        class StuckService:
            def __init__(self):
                self.closed = False

            async def plan(self, body):
                await asyncio.sleep(3600)  # never finishes on its own

            def healthz(self):
                return {"status": "ok"}

            def close(self):
                self.closed = True

        service = StuckService()
        running = _ServerThread(service)
        with running:
            with PlanClient(port=running.port, timeout=5.0) as client:
                # Fire the stuck request from a helper thread; it will
                # die with a connection error when the server forces.
                def doomed():
                    try:
                        client.plan(BODY)
                    except PlanClientError:
                        pass

                poster = threading.Thread(target=doomed, daemon=True)
                poster.start()
                deadline = time.time() + 30
                while running.server._inflight == 0:
                    assert time.time() < deadline, "request never arrived"
                    time.sleep(0.01)

                running.signal()           # drain starts, hangs forever
                time.sleep(0.1)
                running.signal()           # force
                running._thread.join(timeout=60)
                poster.join(timeout=60)
        assert running.result is None
        assert isinstance(running.error, TransientFaultError)
        assert running.error.exit_code == 75
        assert "abandoned 1" in str(running.error)
        assert service.closed


class TestCrossThreadShutdown:
    def test_request_shutdown_from_foreign_thread_drains(self, mini_zoo):
        """request_shutdown must work from any thread, unaided.

        An ``asyncio.Event`` set from a foreign thread does not wake
        the serving loop — the method itself must marshal through
        ``call_soon_threadsafe``.  The call site here deliberately does
        NOT (unlike ``_ServerThread.signal``): before the fix this hung
        the drain until the join timeout.
        """
        service = PlanService(_engine(mini_zoo))
        with _ServerThread(service) as running:
            with PlanClient(port=running.port) as client:
                client.healthz()
            running.server.request_shutdown()
            running.join()
        assert running.error is None
        assert running.result == 0

    def test_request_shutdown_before_start_is_safe(self, mini_zoo):
        """No loop yet: the signal lands directly, run() exits at once."""
        service = PlanService(_engine(mini_zoo))
        server = PlanHTTPServer(service, port=0)
        server.request_shutdown()
        assert server._signals == 1
        assert asyncio.run(server.run(install_signals=False)) == 0


class TestContentLengthValidation:
    """RFC 9110: Content-Length is 1*DIGIT — nothing else."""

    @staticmethod
    def _raw(port, lines, body=b""):
        """One raw request; returns the response bytes (read to EOF)."""
        with socket.create_connection(("127.0.0.1", port), timeout=30) as sock:
            sock.sendall(
                "\r\n".join(lines).encode("latin-1") + b"\r\n\r\n" + body
            )
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        return b"".join(chunks)

    @pytest.fixture()
    def served(self, mini_zoo):
        service = PlanService(_engine(mini_zoo))
        with _ServerThread(service) as running:
            yield running

    # int() would happily accept every one of these; the parser must
    # not.  ("²" is a unicode digit: isdigit() is True, isascii() is
    # not.  OWS-padded values never reach the check — _parse_head
    # strips them, which RFC 9110 permits.)
    @pytest.mark.parametrize("value", [
        "+5", "-0", "1_2", "0x5", "5.", "²", "", "5 5",
    ])
    def test_non_digit_content_length_is_single_line_400(self, served, value):
        response = self._raw(served.port, [
            "POST /v1/plan HTTP/1.1",
            "Host: t",
            f"Content-Length: {value}",
        ])
        head, _, body = response.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 400 ")
        assert b"Connection: close" in head
        payload = json.loads(body.decode("utf-8"))
        assert payload["error"] == "malformed Content-Length"
        assert "\n" not in payload["error"]

    def test_pure_digits_still_parse(self, served):
        """Leading zeros are legal 1*DIGIT; the body is read exactly."""
        response = self._raw(served.port, [
            "GET /healthz HTTP/1.1",
            "Host: t",
            "Content-Length: 000",
            "Connection: close",
        ])
        head, _, body = response.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 ")
        assert json.loads(body.decode("utf-8"))["status"] == "ok"

    def test_absent_content_length_means_empty_body(self, served):
        response = self._raw(served.port, [
            "GET /healthz HTTP/1.1",
            "Host: t",
            "Connection: close",
        ])
        assert response.startswith(b"HTTP/1.1 200 ")


class TestRegistryHTTP:
    def test_multi_workload_over_the_wire(self, mini_zoo, twin_zoo):
        """One server, two workloads: routing, /v1/models, /statsz."""
        registry = _registry(mini_zoo, twin_zoo)
        with _ServerThread(registry) as running:
            with PlanClient(port=running.port) as client:
                health = client.healthz()
                assert health["workloads"] == ["lenet-test", "lenet-twin"]
                assert health["loaded"] == []
                assert health["default"] == "lenet-test"

                first = client.plan(BODY, workload="lenet-test")
                second = client.plan(BODY, workload="lenet-twin")
                assert first.key != second.key
                assert first.plan["workload"] == "lenet-test"
                assert second.plan["workload"] == "lenet-twin"

                rows = {
                    row["workload"]: row
                    for row in client.models()["models"]
                }
                digest = rows["lenet-twin"]["model"]
                routed = client.plan(BODY, model=digest)
                assert routed.source == "warm"
                assert routed.data == second.data

                with pytest.raises(PlanClientError) as excinfo:
                    client.plan(BODY, workload="nope")
                assert excinfo.value.status == 400
                assert "unknown workload" in str(excinfo.value)
                assert "\n" not in str(excinfo.value)

                # The shared cache answers warm fetches for any engine.
                fetched = client.fetch(first.key)
                assert fetched.data == first.data

                stats = client.statsz()
                for workload in ("lenet-test", "lenet-twin"):
                    requests = stats["engines"][workload]["requests"]
                    assert requests["engine_resolutions"] == 1
                assert stats["requests"]["bad_requests"] == 1
                assert stats["requests"]["fetch_hits"] == 1
                assert stats["registry"]["loaded"] == [
                    "lenet-test", "lenet-twin",
                ]
            running.signal()
            running.join()
        assert running.error is None
        assert running.result == 0


# ----------------------------------------------------------------------- CLI


def test_unknown_workload_exits_64(capsys):
    from repro.experiments.runner import run

    code = run(["serve", "--workload", "nope", "--scale", "smoke"])
    assert code == 64
    err = capsys.readouterr().err
    assert err.startswith("error: ")
    assert "Traceback" not in err


def test_bad_port_exits_64(capsys):
    from repro.experiments.runner import run

    code = run(["serve", "--port", "99999", "--scale", "smoke"])
    assert code == 64


@pytest.mark.slow
class TestServeSubprocess:
    def _spawn(self, tmp_path, *extra):
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        env.setdefault("REPRO_RESULTS_DIR", str(tmp_path / "results"))
        return subprocess.Popen(
            [sys.executable, "-m", "repro.experiments.runner", "serve",
             "--scale", "smoke", "--port", "0", *extra],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True,
        )

    def _await_port(self, proc):
        deadline = time.time() + 600
        lines = []
        while time.time() < deadline:
            line = proc.stdout.readline()
            if not line:
                break
            lines.append(line)
            match = re.search(r"\[serving http://[\d.]+:(\d+)\]", line)
            if match:
                return int(match.group(1)), lines
        proc.kill()
        pytest.fail("server never announced its port: " + "".join(lines)
                    + proc.stderr.read())

    def test_serve_round_trip_and_clean_sigterm(self, tmp_path):
        proc = self._spawn(tmp_path)
        try:
            port, _ = self._await_port(proc)
            with PlanClient(port=port, timeout=600) as client:
                assert client.healthz()["status"] == "ok"
                served = client.plan(BODY)
                assert served.source == "cold"
                warm = client.plan(BODY)
                assert warm.source == "warm"
                assert warm.data == served.data
                # /metricsz over the real wire: every line well-formed,
                # the traffic just generated visible in the exposition
                from repro.obs.validate import validate_exposition

                text = client.metricsz()
                assert list(validate_exposition(text)) == []
                assert "repro_serve_plans_total" in text
                assert 'repro_http_requests_total{route="/v1/plan",status="200"} 2' in text
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=120)
        except Exception:
            proc.kill()
            raise
        assert proc.returncode == 0, err[-2000:]
        assert "[drained: served 2 plan request(s)" in out
        assert "warm=1 cold=1" in out

    def test_two_workload_serve_both_digests_answer(self, tmp_path):
        """One process, two preloaded engines: route by either digest."""
        proc = self._spawn(
            tmp_path, "--workload", "lenet-digits",
            "--workload", "convnet-cifar",
        )
        try:
            port, lines = self._await_port(proc)
            digests = dict(re.findall(
                r"# plan-serving ([\w-]+) \(model ([0-9a-f]{16})\)",
                "".join(lines),
            ))
            assert set(digests) == {"lenet-digits", "convnet-cifar"}
            with PlanClient(port=port, timeout=600) as client:
                rows = {
                    row["workload"]: row
                    for row in client.models()["models"]
                }
                keys = {}
                for workload, digest in digests.items():
                    assert rows[workload]["loaded"] is True
                    assert rows[workload]["model"] == digest
                    served = client.plan(BODY, model=digest)
                    assert served.plan["workload"] == workload
                    warm = client.plan(BODY, workload=workload)
                    assert warm.source == "warm"
                    assert warm.data == served.data
                    keys[workload] = served.key
                assert keys["lenet-digits"] != keys["convnet-cifar"]
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=120)
        except Exception:
            proc.kill()
            raise
        assert proc.returncode == 0, err[-2000:]
        # The cold/warm split depends on what earlier tests left in the
        # session's shared disk cache; the totals do not.
        assert "[drained: served 4 plan request(s)" in out
        assert "coalesced=0" in out
