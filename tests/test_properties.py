"""Property-based tests (hypothesis) on framework-wide invariants.

Random layer stacks and random inputs probe invariants that unit tests
with fixed seeds could miss:

- gradients and curvature are always finite;
- curvature is non-negative for piecewise-linear nets + CE/MSE loss;
- forward passes are pure (same input -> same output, no cache leakage);
- weight override round-trips leave the model unchanged.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    LeakyReLU,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.losses import CrossEntropyLoss, MSELoss
from repro.nn.module import Sequential
from repro.utils.rng import RngStream


def _random_conv_stack(seed, depth):
    """A random (but always shape-valid) conv stack on 1x12x12 inputs."""
    rng = RngStream(seed).child("stack")
    gen = np.random.default_rng(seed)
    layers = []
    channels = 1
    size = 12
    for index in range(depth):
        choice = gen.integers(0, 4)
        if choice == 0 and size >= 5:
            out_ch = int(gen.integers(2, 5))
            layers.append(Conv2d(channels, out_ch, 3, padding=1,
                                 rng=rng.child("conv", index)))
            channels = out_ch
        elif choice == 1:
            layers.append(ReLU() if gen.integers(0, 2) else LeakyReLU(0.1))
        elif choice == 2 and size >= 4:
            layers.append(MaxPool2d(2) if gen.integers(0, 2) else AvgPool2d(2))
            size //= 2
        else:
            layers.append(BatchNorm2d(channels))
    layers.append(Flatten())
    features = channels * size * size
    layers.append(Linear(features, 4, rng=rng.child("head")))
    return Sequential(*layers)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10000), depth=st.integers(1, 6))
def test_random_stacks_finite_derivatives(seed, depth):
    model = _random_conv_stack(seed, depth)
    model.train()
    gen = np.random.default_rng(seed + 1)
    x = gen.normal(size=(3, 1, 12, 12))
    y = gen.integers(0, 4, size=3)
    loss = CrossEntropyLoss()
    loss(model(x), y)
    model.zero_grad()
    model.zero_curvature()
    grad_in = model.backward(loss.backward())
    curv_in = model.backward_second(loss.second())
    assert np.all(np.isfinite(grad_in))
    assert np.all(np.isfinite(curv_in))
    for _, p in model.named_parameters():
        assert np.all(np.isfinite(p.grad))
        assert np.all(np.isfinite(p.curvature))


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10000))
def test_relu_linear_curvature_nonnegative(seed):
    """Piecewise-linear nets with convex losses: OBD curvature >= 0."""
    rng = RngStream(seed).child("m")
    model = Sequential(
        Linear(5, 8, rng=rng.child("a")),
        ReLU(),
        Linear(8, 6, rng=rng.child("b")),
        ReLU(),
        Linear(6, 3, rng=rng.child("c")),
    )
    gen = np.random.default_rng(seed)
    x = gen.normal(size=(4, 5))
    y = gen.integers(0, 3, size=4)
    loss = CrossEntropyLoss()
    loss(model(x), y)
    model.zero_curvature()
    model.backward(loss.backward())
    curv_in = model.backward_second(loss.second())
    assert np.all(curv_in >= -1e-12)
    for _, p in model.named_parameters():
        assert np.all(p.curvature >= -1e-12)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10000))
def test_forward_is_pure(seed):
    model = _random_conv_stack(seed, 3)
    model.eval()
    gen = np.random.default_rng(seed + 2)
    x = gen.normal(size=(2, 1, 12, 12))
    np.testing.assert_array_equal(model(x), model(x))


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10000))
def test_weight_override_roundtrip(seed):
    rng = RngStream(seed).child("m")
    layer = Linear(6, 4, rng=rng.child("l"))
    gen = np.random.default_rng(seed)
    x = gen.normal(size=(3, 6)).astype(np.float32)
    clean = layer(x)
    layer.set_weight_override(gen.normal(size=(4, 6)).astype(np.float32))
    noisy = layer(x)
    layer.clear_weight_override()
    restored = layer(x)
    np.testing.assert_array_equal(clean, restored)
    assert not np.array_equal(clean, noisy)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10000))
def test_mse_curvature_additivity_over_outputs(seed):
    """Eq. 5's independence assumption is exact at the loss seed level:
    MSE curvature is constant regardless of predictions."""
    gen = np.random.default_rng(seed)
    outputs = gen.normal(size=(4, 5))
    targets = gen.normal(size=(4, 5))
    loss = MSELoss()
    loss(outputs, targets)
    second = loss.second()
    assert np.allclose(second, second.flat[0])
