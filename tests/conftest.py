"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.utils.rng import RngStream


@pytest.fixture(scope="session", autouse=True)
def hermetic_cache_dir(tmp_path_factory):
    """Point every on-disk cache at a session-scoped temporary directory.

    Covers the model-zoo artifact cache *and* the selection-plan cache
    (both resolve through ``REPRO_CACHE_DIR``), so CI and local runs
    never read stale artifacts from — or leak artifacts into — the
    user's ``~/.cache/repro``.  Session-scoped: the first test (or
    runner subprocess, which inherits the environment) trains and
    caches the smoke models once, and the rest of the session reuses
    them.
    """
    path = tmp_path_factory.mktemp("repro-cache")
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(path)
    yield path
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture
def rng():
    """A deterministic root RNG stream for tests."""
    return RngStream(seed=1234)


@pytest.fixture
def float64_default():
    """Context: run a test with float64 defaults for finite differences."""
    return np.float64


@pytest.fixture(scope="session")
def trained_lenet():
    """A small LeNet trained on SyntheticDigits (shared across tests).

    Returns ``(model, data, clean_accuracy)``.  Session-scoped because
    training costs a few seconds; tests must not mutate the parameters
    (use weight overrides instead).
    """
    from repro.data import synthetic_digits
    from repro.nn import SGD, TrainConfig, Trainer, cosine_schedule, evaluate_accuracy
    from repro.nn.models import lenet

    root = RngStream(seed=777)
    data = synthetic_digits(n_train=900, n_test=300, rng=root.child("data"))
    model = lenet(root.child("model"), conv_channels=(6, 12), fc_features=(64, 32))
    optimizer = SGD(model.parameters(), lr=0.03, momentum=0.9)
    trainer = Trainer(optimizer, schedule=cosine_schedule(0.03, 8),
                      rng=root.child("train"))
    trainer.fit(model, data.train_x, data.train_y,
                config=TrainConfig(epochs=8, batch_size=64))
    accuracy = evaluate_accuracy(model, data.test_x, data.test_y)
    assert accuracy > 0.9, f"fixture model failed to train: {accuracy}"
    return model, data, accuracy
