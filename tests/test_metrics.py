"""Monte Carlo harness and reporting helpers."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.metrics import DEFAULT_NWC_TARGETS, monte_carlo
from repro.experiments.reporting import results_dir
from repro.utils.rng import RngStream


def test_default_targets_match_paper_columns():
    assert DEFAULT_NWC_TARGETS == (0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0)


def test_monte_carlo_runs_are_stream_stable():
    """Run i's value must not depend on the total run count."""
    seen = {}

    def run_fn(run_rng):
        return float(run_rng.normal())

    short = monte_carlo(run_fn, 4, RngStream(5).child("mc-test"))
    long = monte_carlo(run_fn, 8, RngStream(5).child("mc-test"))
    np.testing.assert_array_equal(short.values, long.values[:4])


def test_monte_carlo_summary_format():
    result = monte_carlo(lambda r: 0.5, 6, RngStream(1).child("x"), label="demo")
    stat = result.summary()
    assert stat.mean == 0.5 and stat.std == 0.0
    assert "demo" in repr(result)


def test_monte_carlo_convergence_flag():
    result = monte_carlo(lambda r: 1.0, 20, RngStream(2).child("c"))
    assert result.converged  # constant sequence converges trivially


def test_monte_carlo_validates_runs():
    with pytest.raises(ValueError):
        monte_carlo(lambda r: 0.0, 0, RngStream(0).child("n"))


def test_results_dir_env_override(tmp_path, monkeypatch):
    target = os.path.join(tmp_path, "outputs")
    monkeypatch.setenv("REPRO_RESULTS_DIR", target)
    path = results_dir()
    assert path == target
    assert os.path.isdir(path)


def test_results_dir_explicit_argument(tmp_path):
    target = os.path.join(tmp_path, "explicit")
    assert results_dir(target) == target
    assert os.path.isdir(target)
