"""Variance closure: analytic stack variance vs Monte Carlo, end to end.

The tentpole contract of the variance-closure subsystem: the analytic
``NonidealityStack.variance_map`` is the *exact* per-weight second moment
``E[dw^2]`` of an unverified deployment through the same stack — write
noise through the quantization scales, drift at the read time,
compensation — and feeding it into Eq. 5 (hetero-SWIM) buys accuracy at
equal write-verify budget when the platform is heterogeneous.
"""

from __future__ import annotations

import statistics

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cim import (
    DeviceConfig,
    DeviceTechnology,
    MappingConfig,
    NonidealityStack,
    ProgrammingNoiseStage,
    get_technology,
)
from repro.cim.mapping import WeightMapper
from repro.core import WeightSpace, variance_map_from_mapping
from repro.nn.models import mlp
from repro.utils.rng import RngStream

from .helpers import to_float64

ONE_MONTH = 2.592e6


def chi2_quantile(p, df):
    """Chi-square quantile via the Wilson-Hilferty approximation.

    Accurate to a fraction of a percent for the df >= 100 used here;
    avoids a SciPy dependency in the test suite.
    """
    z = statistics.NormalDist().inv_cdf(p)
    return df * (1.0 - 2.0 / (9.0 * df) + z * (2.0 / (9.0 * df)) ** 0.5) ** 3


@pytest.fixture
def small_model(rng):
    model = to_float64(mlp(rng.child("m"), (6, 10, 4), activation="relu"))
    return model, WeightSpace.from_model(model)


# ------------------------------------------------- MC vs analytic closure

@pytest.mark.slow
@pytest.mark.parametrize("technology", ["fefet", "pcm"])
@pytest.mark.parametrize("read_time", [None, ONE_MONTH])
def test_empirical_variance_matches_analytic(small_model, technology,
                                             read_time):
    """256-trial per-weight second moments sit in the chi-square band.

    For every weight, ``n * m2_hat / m2`` is approximately chi-square
    with ``n`` degrees of freedom; the band below uses far-out quantiles
    (plus slack for the non-Gaussian drift factor at long read times) so
    a correct analytic map passes with margin while an error in any term
    — slice weighting, differential doubling, drift bias, noise shrink,
    relaxation — moves whole tensors far outside it.
    """
    model, space = small_model
    n_trials = 256
    tech = get_technology(technology)
    mapping = tech.mapping_config()
    stack = tech.build_stack()

    analytic = stack.variance_map(
        mapping, read_time=read_time, space=space, model=model
    )
    empirical = stack.empirical_variance_map(
        mapping, n_trials, RngStream(2024).child("mc", technology),
        read_time=read_time, space=space, model=model,
    )
    assert analytic.shape == empirical.shape == (space.total_size,)
    assert np.all(analytic > 0)

    ratio = empirical / analytic
    lo = chi2_quantile(1e-7, n_trials) / n_trials
    hi = chi2_quantile(1.0 - 1e-7, n_trials) / n_trials
    slack = 1.25  # heavy-tailed drift factor inflates the chi-square band
    assert ratio.min() > 1.0 - slack * (1.0 - lo), ratio.min()
    assert ratio.max() < 1.0 + slack * (hi - 1.0), ratio.max()
    # The across-weight mean ratio is far tighter than any single weight.
    assert ratio.mean() == pytest.approx(1.0, abs=0.03)


def test_variance_map_drift_raises_the_mean(small_model):
    """Sanity: pcm at one month is far noisier than at write time."""
    model, space = small_model
    tech = get_technology("pcm")
    mapping = tech.mapping_config()
    stack = tech.build_stack()
    at_write = stack.variance_map(mapping, space=space, model=model)
    at_month = stack.variance_map(
        mapping, read_time=ONE_MONTH, space=space, model=model
    )
    assert at_month.mean() > 2.0 * at_write.mean()


def test_accelerator_variance_map_matches_stack(small_model):
    """CimAccelerator.variance_map is the stack map per mapped tensor."""
    from repro.cim import CimAccelerator

    model, space = small_model
    accelerator = CimAccelerator(model, technology="pcm")
    per_tensor = accelerator.variance_map(read_time=ONE_MONTH)
    assert set(per_tensor) == set(space.names)
    flat = space.flatten(per_tensor)
    direct = accelerator.stack.variance_map(
        accelerator.mapping_config, read_time=ONE_MONTH, space=space,
        model=model,
    )
    np.testing.assert_array_equal(flat, direct)


# ------------------------------------------------- hypothesis properties

@settings(max_examples=40, deadline=None)
@given(
    sigma=st.floats(0.01, 0.3),
    bits=st.integers(1, 4),
    weight_bits=st.integers(1, 6),
    differential=st.booleans(),
    nu=st.floats(0.0, 0.1),
    sigma_nu=st.floats(0.0, 0.02),
    relaxation=st.floats(0.0, 0.02),
    spatial_sigma=st.floats(0.0, 0.2),
    compensated=st.booleans(),
    read_time=st.one_of(st.none(), st.floats(1.0, 3.2e7)),
    seed=st.integers(0, 2**16),
)
def test_variance_map_is_non_negative(sigma, bits, weight_bits, differential,
                                      nu, sigma_nu, relaxation, spatial_sigma,
                                      compensated, read_time, seed):
    """E[dw^2] >= 0 for any stack composition, levels and read time."""
    tech = DeviceTechnology(
        name="prop", bits=bits, sigma=sigma, drift_nu=nu, drift_sigma_nu=sigma_nu,
        relaxation_sigma=relaxation, spatial_sigma=spatial_sigma,
        drift_compensated=compensated,
    )
    mapping = MappingConfig(
        weight_bits=weight_bits,
        device=DeviceConfig(bits=bits, sigma=sigma),
        differential=differential,
    )
    stack = tech.build_stack()
    gen = np.random.default_rng(seed)
    codes = gen.integers(-mapping.qmax, mapping.qmax + 1, size=(5, 3))
    levels, _ = WeightMapper(mapping).slice_codes(codes)
    variance = stack.variance_map(
        mapping, read_time=read_time, levels=levels, scale=0.01
    )
    assert variance.shape == (5, 3)
    assert np.all(variance >= 0.0)
    assert np.all(np.isfinite(variance))


@settings(max_examples=40, deadline=None)
@given(
    nu=st.floats(0.03, 0.1),
    sigma_nu_frac=st.floats(0.0, 0.25),
    relaxation=st.floats(0.0, 0.01),
    sigma=st.floats(0.05, 0.15),
    compensated=st.booleans(),
    t_pair=st.tuples(st.floats(600.0, 3.15e7), st.floats(600.0, 3.15e7)),
    seed=st.integers(0, 2**16),
)
def test_variance_map_monotone_in_read_time(nu, sigma_nu_frac, relaxation,
                                            sigma, compensated, t_pair, seed):
    """Longer storage never helps a programmed weight.

    For strongly drifting technologies and devices programmed in the
    upper half of their range — where the level-proportional drift error
    dominates the (physically real) multiplicative shrink of the write
    noise — the per-weight variance map is elementwise non-decreasing in
    the read time.
    """
    t1, t2 = sorted(t_pair)
    tech = DeviceTechnology(
        name="prop", bits=4, sigma=sigma, drift_nu=nu,
        drift_sigma_nu=nu * sigma_nu_frac, relaxation_sigma=relaxation,
        drift_compensated=compensated,
    )
    mapping = MappingConfig(weight_bits=4, device=tech.device_config())
    stack = tech.build_stack()
    gen = np.random.default_rng(seed)
    codes = gen.integers(8, 16, size=(4, 4)) * gen.choice([-1, 1], size=(4, 4))
    levels, _ = WeightMapper(mapping).slice_codes(codes)
    early = stack.variance_map(mapping, read_time=t1, levels=levels, scale=0.02)
    late = stack.variance_map(mapping, read_time=t2, levels=levels, scale=0.02)
    assert np.all(late >= early * (1.0 - 1e-12))


@settings(max_examples=30, deadline=None)
@given(
    sigma=st.floats(0.01, 0.3),
    bits=st.integers(1, 4),
    weight_bits=st.integers(1, 6),
    differential=st.booleans(),
    seed=st.integers(0, 2**16),
)
def test_variance_map_reduces_to_mapping_constant(sigma, bits, weight_bits,
                                                  differential, seed):
    """Homogeneous programming noise only => exactly the Eq. 16 constant."""
    mapping = MappingConfig(
        weight_bits=weight_bits,
        device=DeviceConfig(bits=bits, sigma=sigma),
        differential=differential,
    )
    stack = NonidealityStack(stages=(ProgrammingNoiseStage(),))
    model = to_float64(mlp(RngStream(seed).child("m"), (4, 6, 3),
                           activation="relu"))
    space = WeightSpace.from_model(model)
    from_stack = stack.variance_map(mapping, space=space, model=model)
    from_mapping = variance_map_from_mapping(space, model, mapping)
    np.testing.assert_array_equal(from_stack, from_mapping)


# ------------------------------------------------- scorer-fed sweeps

def test_sweep_nwc_scorer_path_matches_precomputed_order(small_model, rng):
    """order=None + scorer resolves the same shared ranking once."""
    from repro.cim import CimAccelerator
    from repro.core import HeteroSwimScorer, MonteCarloEngine
    from repro.core.swim import sweep_nwc

    model, space = small_model
    eval_x = rng.child("x").normal(size=(32, 6))
    eval_y = rng.child("y").integers(0, 4, size=32)
    sense_x = rng.child("sx").normal(size=(32, 6))
    sense_y = rng.child("sy").integers(0, 4, size=32)
    targets = (0.0, 0.5)
    scorer = HeteroSwimScorer(technology="fefet", batch_size=32)

    def engine(seed=31):
        return MonteCarloEngine(2, RngStream(seed).child("sweep"))

    accelerator = CimAccelerator(model, technology="fefet")
    by_scorer = engine().sweep_nwc(
        model, accelerator, None, space, eval_x, eval_y, targets,
        scorer=scorer, sense_x=sense_x, sense_y=sense_y,
    )
    order = scorer.ranking(
        model, space, sense_x, sense_y,
        rng=RngStream(31).child("sweep").child("scorer"),
    )
    by_order = engine().sweep_nwc(
        model, accelerator, order, space, eval_x, eval_y, targets
    )
    np.testing.assert_array_equal(by_scorer[0], by_order[0])
    np.testing.assert_array_equal(by_scorer[1], by_order[1])

    # The scalar single-draw entry point accepts the same contract.
    accuracies, achieved = sweep_nwc(
        model, accelerator, None, space, eval_x, eval_y, targets,
        RngStream(7).child("scalar"), scorer=scorer,
        sense_x=sense_x, sense_y=sense_y,
    )
    assert accuracies.shape == achieved.shape == (2,)

    with pytest.raises(ValueError, match="precomputed order or a scorer"):
        engine().sweep_nwc(
            model, accelerator, None, space, eval_x, eval_y, targets
        )
    with pytest.raises(ValueError, match="sense_x"):
        engine().sweep_nwc(
            model, accelerator, None, space, eval_x, eval_y, targets,
            scorer=scorer,
        )
    with pytest.raises(ValueError, match="sense_x"):
        sweep_nwc(
            model, accelerator, None, space, eval_x, eval_y, targets,
            RngStream(7).child("scalar"), scorer=scorer,
        )


def test_variance_map_rejects_custom_stages():
    """Unknown stage types fail loudly instead of returning a wrong map."""
    from repro.cim import NonidealityStage

    class LineDropStage(NonidealityStage):
        name = "line-drop"
        when = "write"

        def apply(self, levels, ctx, rng, t=None):
            return levels * 0.99

    mapping = MappingConfig()
    stack = NonidealityStack(
        stages=(ProgrammingNoiseStage(), LineDropStage())
    )
    with pytest.raises(NotImplementedError, match="line-drop"):
        stack.variance_map(mapping, shape=(3,))

    class ReadDropStage(LineDropStage):
        name = "read-drop"
        when = "read"

    stack = NonidealityStack(stages=(ProgrammingNoiseStage(), ReadDropStage()))
    # Without a read time the read pipeline never runs: still analytic.
    assert np.all(stack.variance_map(mapping, shape=(3,)) > 0)
    with pytest.raises(NotImplementedError, match="read-drop"):
        stack.variance_map(mapping, shape=(3,), read_time=10.0)


def test_variance_map_without_programming_stage_has_no_noise_floor():
    """The map reflects the stack's actual stages, not Eq. 16 by fiat."""
    from repro.cim import SpatialCorrelationStage, SpatialVariationModel

    mapping = MappingConfig()
    spatial_only = NonidealityStack(
        stages=(SpatialCorrelationStage(SpatialVariationModel(sigma=0.1)),)
    )
    with_noise = NonidealityStack(
        stages=(
            ProgrammingNoiseStage(),
            SpatialCorrelationStage(SpatialVariationModel(sigma=0.1)),
        )
    )
    lean = spatial_only.variance_map(mapping, shape=(4,))
    full = with_noise.variance_map(mapping, shape=(4,))
    assert np.all(lean > 0)
    assert np.all(full > lean)
    expected_gap = (mapping.code_noise_std()) ** 2
    np.testing.assert_allclose(full - lean, expected_gap, rtol=1e-12)


# ------------------------------------------- selection closes the loop

@pytest.mark.slow
def test_stack_fed_hetero_swim_beats_swim_under_drift():
    """Equal budget, drifted pcm: the physics-fed ranking wins.

    ReLU networks are positively homogeneous, so scaling conv1 up and
    conv2 down preserves the function while skewing the per-tensor
    quantization scales — the within-one-chip heterogeneity regime of
    Qin et al.  Plain SWIM's curvature ranking is distorted by the
    rescale (H_ii picks up 1/c^2); the stack-fed hetero ranking is
    invariant (H_ii * var_i cancels the scale) and verifies the tensor
    that actually hurts, winning at the same NWC budget.
    """
    from repro.experiments.config import SMOKE
    from repro.experiments.model_zoo import load_workload
    from repro.experiments.sweeps import run_method_sweep
    from repro.nn.layers import Conv2d

    zoo = load_workload(SMOKE.workload("lenet-digits"))
    convs = [m for _, m in zoo.model.named_modules() if isinstance(m, Conv2d)]
    c = 8.0
    convs[0].weight.data *= c
    convs[0].bias.data *= c
    convs[1].weight.data /= c

    outcome = run_method_sweep(
        zoo, sigma=None, technology="pcm-comp", read_time=ONE_MONTH,
        nwc_targets=(0.3,), mc_runs=12, rng=RngStream(23).child("demo"),
        eval_samples=200, sense_samples=128,
        methods=("swim", "hetero_swim"),
    )
    swim = float(outcome.curves["swim"].means()[0])
    hetero = float(outcome.curves["hetero_swim"].means()[0])
    # Paired draws: both methods deploy against identical noise, so the
    # difference is pure selection quality.
    assert hetero > swim + 0.01, (swim, hetero)
