"""Composable nonideality stack + technology registry.

Contract under test: every stage supports the leading ``(n_trials, ...)``
axis through per-trial named RNG substreams, with trial ``i`` of the
batched path bitwise-identical to the scalar call — programming noise,
spatial fields, retention drift, and their stacked composition — plus
the registry round trip and the deprecation shims of the old silos.
"""

from __future__ import annotations

import importlib
import sys

import numpy as np
import pytest

from repro.cim import (
    CimAccelerator,
    DeviceConfig,
    DeviceTechnology,
    MappingConfig,
    NonidealityStack,
    ProgrammingNoiseStage,
    RetentionDriftStage,
    RetentionModel,
    SpatialCorrelationStage,
    SpatialVariationModel,
    StageContext,
    get_technology,
    register_technology,
    resolve_technology,
    technology_names,
)
from repro.cim.devices.registry import _REGISTRY
from repro.nn.models import mlp
from repro.utils.rng import RngStream


@pytest.fixture
def ctx():
    return StageContext.from_mapping(
        MappingConfig(weight_bits=4, device=DeviceConfig(bits=4, sigma=0.1))
    )


def _gens(seed, n):
    return [np.random.default_rng(seed + i) for i in range(n)]


# ------------------------------------------------- per-stage trial batching


def test_retention_apply_trials_matches_scalar_bitwise():
    model = RetentionModel(nu=0.03, sigma_nu=0.01, relaxation_sigma=0.01)
    levels = np.random.default_rng(0).uniform(0, 15, size=(4, 50))
    batched = model.apply_trials(levels, 1e4, _gens(7, 4))
    for i, rng in enumerate(_gens(7, 4)):
        scalar = model.apply(levels[i], 1e4, rng)
        np.testing.assert_array_equal(batched[i], scalar)


def test_spatial_sample_field_trials_matches_scalar_bitwise():
    model = SpatialVariationModel(sigma=0.1, correlation_length=4.0)
    batched = model.sample_field_trials(500, _gens(3, 5))
    assert batched.shape == (5, 500)
    for i, rng in enumerate(_gens(3, 5)):
        np.testing.assert_array_equal(batched[i], model.sample_field(500, rng))


def test_stack_program_trials_matches_scalar_bitwise(ctx):
    stack = NonidealityStack(stages=(
        ProgrammingNoiseStage(),
        SpatialCorrelationStage(SpatialVariationModel(sigma=0.05)),
    ))
    levels = np.random.default_rng(1).uniform(0, 15, size=(1, 6, 8))
    batched = stack.program_trials(levels, ctx, _gens(11, 3))
    assert batched.shape == (1, 3, 6, 8)
    for i, rng in enumerate(_gens(11, 3)):
        np.testing.assert_array_equal(batched[:, i], stack.program(levels, ctx, rng))


def test_stack_read_trials_matches_scalar_bitwise(ctx):
    stack = NonidealityStack(stages=(
        ProgrammingNoiseStage(),
        RetentionDriftStage(RetentionModel(nu=0.05, sigma_nu=0.01)),
    ))
    levels = np.random.default_rng(2).uniform(0, 15, size=(1, 4, 5, 5))
    streams = [RngStream(90).child("trial", i) for i in range(4)]
    batched = stack.read_trials(levels, ctx, streams, t=3600.0)
    for i, stream in enumerate(streams):
        scalar = stack.read(levels[:, i], ctx, stream, t=3600.0)
        np.testing.assert_array_equal(batched[:, i], scalar)
    # Named substreams: the same (stream, t) always reproduces the draw.
    again = stack.read_trials(levels, ctx, streams, t=3600.0)
    np.testing.assert_array_equal(batched, again)


def test_stack_read_identity_without_time_or_read_stages(ctx):
    drifting = NonidealityStack(stages=(
        RetentionDriftStage(RetentionModel(nu=0.05)),
    ))
    writes_only = NonidealityStack(stages=(ProgrammingNoiseStage(),))
    levels = np.ones((1, 3, 3))
    stream = RngStream(4)
    assert drifting.read(levels, ctx, stream, t=None) is levels
    assert writes_only.read(levels, ctx, stream, t=1e5) is levels
    assert not writes_only.has_read_stages


def test_default_stack_matches_mapper_program_levels(ctx):
    """The refactor must not change the paper's seeded programming draws."""
    from repro.cim.mapping import WeightMapper

    mapping = MappingConfig(weight_bits=4, device=DeviceConfig(bits=4, sigma=0.1))
    mapper = WeightMapper(mapping)
    mapped = mapper.map_tensor(np.random.default_rng(5).normal(size=(7, 9)))
    legacy = mapper.program_levels(mapped, np.random.default_rng(42))
    stacked = NonidealityStack.default().program(
        mapped.levels, StageContext.from_mapping(mapping), np.random.default_rng(42)
    )
    np.testing.assert_array_equal(legacy, stacked)


def test_default_stack_matches_mapper_program_levels_differential():
    mapping = MappingConfig(
        weight_bits=6, device=DeviceConfig(bits=4, sigma=0.1), differential=True
    )
    from repro.cim.mapping import WeightMapper

    mapper = WeightMapper(mapping)
    mapped = mapper.map_tensor(np.random.default_rng(6).normal(size=(5, 4)))
    legacy = mapper.program_levels(mapped, np.random.default_rng(9))
    stacked = NonidealityStack.default().program(
        mapped.levels, StageContext.from_mapping(mapping), np.random.default_rng(9)
    )
    np.testing.assert_array_equal(legacy, stacked)


# ----------------------------------------------------------------- registry


def test_registry_has_the_four_builtins():
    assert set(technology_names()) >= {"fefet", "rram", "pcm", "mram"}


def test_fefet_is_the_papers_operating_point():
    tech = get_technology("fefet")
    device = tech.device_config()
    assert device.bits == 4
    assert device.sigma == pytest.approx(0.1)


def test_technology_round_trip_and_seeded_stack_determinism(ctx):
    for name in technology_names():
        tech = get_technology(name)
        clone = DeviceTechnology.from_dict(tech.to_dict())
        assert clone == tech
        levels = np.random.default_rng(0).uniform(0, tech.device_config().max_level,
                                                  size=(1, 40))
        a = clone.build_stack().program(levels, ctx, np.random.default_rng(17))
        b = tech.build_stack().program(levels, ctx, np.random.default_rng(17))
        np.testing.assert_array_equal(a, b)


def test_technology_stack_composition():
    assert [s.name for s in get_technology("pcm").build_stack().stages] == [
        "program-noise", "retention",
    ]
    assert not get_technology("mram").build_stack().has_read_stages
    spatial = DeviceTechnology(name="_spatial", spatial_sigma=0.05,
                               drift_nu=0.01)
    assert [s.name for s in spatial.build_stack().stages] == [
        "program-noise", "spatial", "retention",
    ]


def test_register_technology_guards():
    with pytest.raises(ValueError, match="already registered"):
        register_technology(get_technology("pcm"))
    with pytest.raises(TypeError):
        register_technology("pcm")
    with pytest.raises(KeyError, match="unknown technology"):
        get_technology("ecram")
    custom = DeviceTechnology(name="_custom_test", sigma=0.2)
    try:
        register_technology(custom)
        assert resolve_technology("_custom_test") is custom
        assert resolve_technology(custom) is custom
    finally:
        _REGISTRY.pop("_custom_test", None)


# ------------------------------------------------- accelerator integration


@pytest.fixture
def small_setup(rng):
    model = mlp(rng.child("m"), (6, 10, 4), activation="relu")
    x = rng.child("x").normal(size=(32, 6))
    y = rng.child("y").integers(0, 4, size=32)
    return model, x, y


def test_accelerator_technology_wiring(small_setup):
    model, _, _ = small_setup
    acc = CimAccelerator(model, technology="pcm")
    assert acc.technology.name == "pcm"
    assert acc.mapping_config.device.sigma == pytest.approx(0.12)
    assert acc.stack.has_read_stages


def test_accelerator_drift_changes_deployment_and_is_deterministic(small_setup):
    model, _, _ = small_setup
    acc = CimAccelerator(model, technology="pcm")
    stream = RngStream(21).child("run")
    acc.program(stream.child("program").generator)
    acc.write_verify_all(stream.child("verify").generator)

    fresh = acc.apply_all()
    fresh_weights = {n: w.copy() for n, w in acc.deployed_weights().items()}
    acc.apply_all(read_time=1e5, read_stream=stream)
    aged = acc.deployed_weights()
    for name in fresh_weights:
        assert np.abs(aged[name] - fresh_weights[name]).max() > 0
    # Same (stream, t): identical drift realization (paired design).
    acc.apply_all(read_time=1e5, read_stream=stream)
    again = acc.deployed_weights()
    for name in fresh_weights:
        np.testing.assert_array_equal(aged[name], again[name])
    assert fresh == pytest.approx(1.0)


def test_accelerator_trial_drift_matches_scalar_bitwise(small_setup):
    """Whole-pipeline bitwise check: program + drift, batched vs scalar."""
    model, _, _ = small_setup
    n_trials = 3
    root = RngStream(33)
    streams = [root.child("mc", i) for i in range(n_trials)]

    batched = CimAccelerator(model, technology="rram")
    batched.program_trials([s.child("program").generator for s in streams])
    batched.write_verify_trials(rng=root.child("verify").generator)
    batched.apply_selection_trials({}, read_time=7200.0, read_streams=streams)
    trial_weights = batched.deployed_weights()

    scalar = CimAccelerator(model, technology="rram")
    for i, stream in enumerate(streams):
        scalar.program(stream.child("program").generator)
        scalar.write_verify_all(stream.child("verify").generator)
        scalar.apply_none(read_time=7200.0, read_stream=stream)
        for name, weights in scalar.deployed_weights().items():
            np.testing.assert_array_equal(trial_weights[name][i], weights)


def test_accelerator_read_time_requires_stream(small_setup):
    model, _, _ = small_setup
    acc = CimAccelerator(model, technology="pcm")
    acc.program(np.random.default_rng(0))
    acc.write_verify_all(np.random.default_rng(1))
    with pytest.raises(ValueError, match="read_stream"):
        acc.apply_all(read_time=100.0)


def test_wear_summary_tracks_sessions(small_setup):
    model, _, _ = small_setup
    acc = CimAccelerator(model, technology="rram")
    assert acc.wear_summary() is None
    acc.program(np.random.default_rng(0))
    acc.write_verify_all(np.random.default_rng(1))
    wear = acc.wear_summary()
    assert wear["endurance_cycles"] == pytest.approx(1e6)
    assert wear["total_pulses"] > 0
    assert wear["mean_pulses_per_device"] >= 1.0
    assert wear["deployments_to_failure"] > 0
    # Re-programming folds the session into the running aggregates, so a
    # multi-block sweep's wear covers every trial, not just the last one.
    acc.program(np.random.default_rng(2))
    folded = acc.wear_summary()
    assert folded == wear
    acc.write_verify_all(np.random.default_rng(3))
    both = acc.wear_summary()
    assert both["total_pulses"] == pytest.approx(2 * wear["total_pulses"], rel=0.1)


# ------------------------------------------------------- sweep equivalence


@pytest.mark.slow
def test_sweep_batched_matches_scalar_for_every_technology():
    """Seeded equivalence through the experiment layer, per technology.

    The NWC=0 column involves no verify pulses, so it must be bitwise
    across paths (programming and drift draws are per-trial named);
    verified cells share one pulse rng when batched, so they agree
    statistically (deterministic given the seed — tolerance has margin
    over the observed 0.052 worst case).
    """
    from repro.experiments.config import get_scale
    from repro.experiments.model_zoo import load_workload
    from repro.experiments.sweeps import run_method_sweep

    zoo = load_workload(get_scale("smoke").workload("lenet-digits"))
    for tech in technology_names():
        read_time = 3600.0 if get_technology(tech).has_drift else None
        kwargs = dict(
            sigma=None, technology=tech, read_time=read_time,
            nwc_targets=(0.0, 0.5, 1.0), mc_runs=2,
            eval_samples=96, sense_samples=96, methods=("swim", "random"),
        )
        batched = run_method_sweep(
            zoo, rng=RngStream(5).child("eq", tech), batched=True, **kwargs
        )
        scalar = run_method_sweep(
            zoo, rng=RngStream(5).child("eq", tech), batched=False, **kwargs
        )
        assert batched.technology == tech
        for method in ("swim", "random"):
            np.testing.assert_array_equal(
                batched.curves[method].accuracy_runs[:, 0],
                scalar.curves[method].accuracy_runs[:, 0],
            )
            np.testing.assert_allclose(
                batched.curves[method].accuracy_runs,
                scalar.curves[method].accuracy_runs,
                atol=0.10,
            )
            np.testing.assert_allclose(
                batched.curves[method].achieved_nwc,
                scalar.curves[method].achieved_nwc,
                atol=0.05,
            )


# ------------------------------------------------------- deprecation shims


@pytest.mark.parametrize("module,symbol", [
    ("repro.cim.device", "DeviceConfig"),
    ("repro.cim.noise", "ResidualModel"),
    ("repro.cim.retention", "RetentionModel"),
    ("repro.cim.spatial", "SpatialVariationModel"),
    ("repro.cim.endurance", "EnduranceModel"),
])
def test_old_silo_modules_are_deprecated_shims(module, symbol):
    sys.modules.pop(module, None)
    with pytest.warns(DeprecationWarning, match="deprecated"):
        shim = importlib.import_module(module)
    devices = importlib.import_module("repro.cim.devices")
    assert getattr(shim, symbol) is getattr(devices, symbol)
