"""Optimizers and LR schedules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.optim import (
    SGD,
    Adam,
    constant_schedule,
    cosine_schedule,
    step_schedule,
)
from repro.nn.parameter import Parameter


def _quadratic_grad(param, target):
    """Gradient of 0.5 * ||w - target||^2."""
    return param.data - target


def _minimize(optimizer, param, target, steps=200):
    for _ in range(steps):
        param.zero_grad()
        param.accumulate_grad(_quadratic_grad(param, target))
        optimizer.step()
    return float(np.abs(param.data - target).max())


def test_sgd_converges_on_quadratic():
    param = Parameter(np.array([5.0, -3.0]))
    target = np.array([1.0, 2.0])
    optimizer = SGD([param], lr=0.1, momentum=0.0)
    assert _minimize(optimizer, param, target) < 1e-6


def test_sgd_momentum_converges():
    param = Parameter(np.array([5.0, -3.0]))
    target = np.array([1.0, 2.0])
    optimizer = SGD([param], lr=0.05, momentum=0.9)
    assert _minimize(optimizer, param, target, steps=400) < 1e-4


def test_sgd_nesterov_converges():
    param = Parameter(np.array([4.0]))
    optimizer = SGD([param], lr=0.05, momentum=0.9, nesterov=True)
    assert _minimize(optimizer, param, np.array([0.5]), steps=400) < 1e-4


def test_sgd_weight_decay_shrinks_weights():
    param = Parameter(np.array([1.0]))
    optimizer = SGD([param], lr=0.1, momentum=0.0, weight_decay=0.5)
    for _ in range(50):
        param.zero_grad()  # zero task gradient: only decay acts
        optimizer.step()
    assert abs(param.data[0]) < 0.1


def test_adam_converges_on_quadratic():
    param = Parameter(np.array([5.0, -3.0, 0.5]))
    target = np.array([1.0, 2.0, -1.0])
    optimizer = Adam([param], lr=0.1)
    assert _minimize(optimizer, param, target, steps=500) < 1e-4


def test_optimizer_rejects_empty_params():
    with pytest.raises(ValueError, match="no trainable"):
        SGD([], lr=0.1)
    frozen = Parameter(np.zeros(2), trainable=False)
    with pytest.raises(ValueError, match="no trainable"):
        Adam([frozen], lr=0.1)


def test_optimizer_skips_frozen_params():
    train = Parameter(np.array([1.0]))
    frozen = Parameter(np.array([1.0]), trainable=False)
    optimizer = SGD([train, frozen], lr=0.1, momentum=0.0)
    for p in (train, frozen):
        p.accumulate_grad(np.array([1.0]))
    optimizer.step()
    assert train.data[0] != 1.0
    assert frozen.data[0] == 1.0


def test_zero_grad_clears_all():
    param = Parameter(np.ones(3))
    optimizer = SGD([param], lr=0.1)
    param.accumulate_grad(np.ones(3))
    optimizer.zero_grad()
    np.testing.assert_array_equal(param.grad, 0)


def test_cosine_schedule_endpoints():
    schedule = cosine_schedule(0.1, total_epochs=10, min_lr=0.001)
    assert schedule(0) == pytest.approx(0.1)
    assert schedule(10) == pytest.approx(0.001)
    assert schedule(5) == pytest.approx((0.1 + 0.001) / 2, rel=0.01)
    values = [schedule(e) for e in range(11)]
    assert all(b <= a + 1e-12 for a, b in zip(values, values[1:]))


def test_step_schedule_milestones():
    schedule = step_schedule(1.0, milestones=[3, 6], gamma=0.1)
    assert schedule(0) == 1.0
    assert schedule(3) == pytest.approx(0.1)
    assert schedule(6) == pytest.approx(0.01)


def test_constant_schedule():
    schedule = constant_schedule(0.05)
    assert schedule(0) == schedule(100) == 0.05
