"""Model zoo topologies: shapes, parameter counts, quantization hooks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.models import convnet, lenet, mlp, resnet18
from repro.nn.quant import ActQuant


def _forward_backward(model, x, num_classes, rng):
    from repro.nn.losses import CrossEntropyLoss

    out = model(x)
    assert out.shape == (x.shape[0], num_classes)
    loss = CrossEntropyLoss()
    loss(out, rng.child("y").integers(0, num_classes, size=x.shape[0]))
    model.zero_grad()
    model.backward(loss.backward())
    model.backward_second(loss.second())
    for _, p in model.named_parameters():
        assert np.all(np.isfinite(p.grad))
        assert np.all(np.isfinite(p.curvature))
    return out


def test_lenet_shapes_and_passes(rng):
    model = lenet(rng.child("m"))
    x = rng.child("x").normal(size=(2, 1, 28, 28)).astype(np.float32)
    _forward_backward(model, x, 10, rng)


def test_lenet_parameter_count_classic(rng):
    model = lenet(rng.child("m"))
    # Classic LeNet-5 on 28x28: ~61.7k parameters.
    assert 55000 < model.num_parameters() < 70000


def test_lenet_rejects_small_images(rng):
    with pytest.raises(ValueError, match="image_size"):
        lenet(rng.child("m"), image_size=8)


def test_lenet_act_quant_insertion(rng):
    model = lenet(rng.child("m"), act_bits=4)
    quants = [m for m in model.modules() if isinstance(m, ActQuant)]
    assert len(quants) == 4  # after each of the four ReLUs


def test_convnet_shapes_and_passes(rng):
    model = convnet(rng.child("m"), width_mult=0.1)
    model.train()
    x = rng.child("x").normal(size=(2, 3, 32, 32)).astype(np.float32)
    _forward_backward(model, x, 10, rng)


def test_convnet_full_width_parameter_count(rng):
    """Full-width VGG-8 layout lands at ~13M mapped weights.

    The paper quotes 6.4e6 for its (unspecified) NeuroSim ConvNet; the
    discrepancy is an architecture-detail difference documented in
    EXPERIMENTS.md, not a width knob.
    """
    model = convnet(rng.child("m"), width_mult=1.0)
    mapped = sum(
        p.size for name, p in model.named_parameters()
        if name.endswith(".weight") and p.data.ndim > 1
    )
    assert 1.0e7 < mapped < 1.6e7


def test_convnet_rejects_bad_image_size(rng):
    with pytest.raises(ValueError, match="divisible"):
        convnet(rng.child("m"), image_size=30)


def test_resnet18_shapes_and_passes(rng):
    model = resnet18(rng.child("m"), width_mult=0.125)
    model.train()
    x = rng.child("x").normal(size=(2, 3, 32, 32)).astype(np.float32)
    _forward_backward(model, x, 10, rng)


def test_resnet18_full_width_parameter_count(rng):
    """Paper reports 1.12e7 weights for ResNet-18."""
    model = resnet18(rng.child("m"), width_mult=1.0)
    assert 1.0e7 < model.num_parameters() < 1.3e7


def test_resnet18_handles_tiny_imagenet_inputs(rng):
    model = resnet18(rng.child("m"), width_mult=0.125, num_classes=20)
    model.eval()
    x = rng.child("x").normal(size=(2, 3, 64, 64)).astype(np.float32)
    out = model(x)
    assert out.shape == (2, 20)


def test_resnet_block_count(rng):
    from repro.nn.models import BasicBlock

    model = resnet18(rng.child("m"), width_mult=0.125)
    blocks = [m for m in model.modules() if isinstance(m, BasicBlock)]
    assert len(blocks) == 8  # (2, 2, 2, 2)


def test_mlp_validation(rng):
    with pytest.raises(ValueError, match="at least"):
        mlp(rng.child("m"), (4,))
    with pytest.raises(ValueError, match="activation"):
        mlp(rng.child("m"), (4, 2), activation="swish")


def test_models_deterministic_given_stream():
    from repro.utils.rng import RngStream

    a = lenet(RngStream(1).child("m"))
    b = lenet(RngStream(1).child("m"))
    for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
        np.testing.assert_array_equal(pa.data, pb.data)
