"""Correctness of the content-addressed planning artifact cache.

The cache's whole value rests on three properties the planning subsystem
leans on: keys are pure functions of content (stable across processes),
any mutation of the producing inputs makes old entries unreachable, and
a warm hit returns exactly what the cold producer stored.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.cim import resolve_technology
from repro.plan import (
    PLAN_CACHE_VERSION,
    PlanArtifactCache,
    artifact_key,
    data_digest,
    model_digest,
)

CONFIG = {
    "model": "abc123",
    "sense": "def456",
    "technology": {"name": "pcm", "sigma": 0.12, "drift_nu": 0.05},
    "read_time": 2.592e6,
    "wear_inflation": 1.0,
}


def _subprocess_eval(expression):
    """Evaluate one expression in a fresh interpreter, return its stdout."""
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    script = (
        "import json\n"
        "from repro.plan import artifact_key, data_digest\n"
        "import numpy as np\n"
        f"print({expression})"
    )
    proc = subprocess.run(
        [sys.executable, "-c", script],
        env=env, capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout.strip()


class TestKeyStability:
    def test_key_is_deterministic_across_processes(self):
        """The same config hashes to the same key in a fresh interpreter."""
        here = artifact_key("order", CONFIG)
        there = _subprocess_eval(
            f"artifact_key('order', json.loads({json.dumps(CONFIG)!r}))"
        )
        assert here == there

    def test_data_digest_is_deterministic_across_processes(self):
        here = data_digest(np.arange(12.0).reshape(3, 4))
        there = _subprocess_eval(
            "data_digest(np.arange(12.0).reshape(3, 4))"
        )
        assert here == there

    def test_key_independent_of_dict_insertion_order(self):
        shuffled = dict(reversed(list(CONFIG.items())))
        assert artifact_key("order", CONFIG) == artifact_key("order", shuffled)

    def test_kind_partitions_the_key_space(self):
        assert artifact_key("order", CONFIG) != artifact_key("curvature", CONFIG)


class TestInvalidation:
    def test_model_mutation_changes_digest(self, trained_lenet):
        model, _, _ = trained_lenet
        before = model_digest(model)
        params = dict(model.named_parameters())
        name = sorted(params)[0]
        original = params[name].data.copy()
        try:
            params[name].data.flat[0] += 1e-3
            assert model_digest(model) != before
        finally:
            params[name].data[...] = original
        assert model_digest(model) == before

    def test_stack_mutation_changes_key(self):
        """Any technology parameter change re-addresses the artifact."""
        tech = resolve_technology("pcm")
        base = artifact_key("variance", {"technology": tech.to_dict()})
        from dataclasses import replace

        for mutation in (
            {"sigma": 0.13},
            {"drift_nu": 0.06},
            {"wear_sigma_growth": 0.5},
        ):
            mutated = replace(tech, **mutation)
            assert artifact_key(
                "variance", {"technology": mutated.to_dict()}
            ) != base

    def test_version_bump_invalidates(self, tmp_path):
        old = PlanArtifactCache(root=str(tmp_path), version=PLAN_CACHE_VERSION)
        old.put("order", CONFIG, {"order": np.arange(5)})
        bumped = PlanArtifactCache(
            root=str(tmp_path), version=PLAN_CACHE_VERSION + 1
        )
        assert bumped.get("order", CONFIG) is None
        assert old.get("order", CONFIG) is not None


class TestBackends:
    def test_memory_roundtrip(self, tmp_path):
        cache = PlanArtifactCache(root=str(tmp_path), disk=False)
        stored = cache.put("order", CONFIG, {"order": np.arange(7)})
        loaded = cache.get("order", CONFIG)
        assert np.array_equal(loaded["order"], stored["order"])
        assert cache.stats()["memory"] == 1

    def test_disk_roundtrip_across_instances(self, tmp_path):
        """A fresh cache instance (new process in spirit) hits the disk."""
        writer = PlanArtifactCache(root=str(tmp_path))
        writer.put(
            "curvature", CONFIG,
            {"scores": np.linspace(0, 1, 9), "tie": np.arange(9.0)},
        )
        reader = PlanArtifactCache(root=str(tmp_path))
        arrays = reader.get("curvature", CONFIG)
        assert np.array_equal(arrays["scores"], np.linspace(0, 1, 9))
        assert np.array_equal(arrays["tie"], np.arange(9.0))
        assert reader.stats()["disk"] == 1

    def test_miss_then_producer_runs_once(self, tmp_path):
        cache = PlanArtifactCache(root=str(tmp_path))
        calls = []

        def produce():
            calls.append(1)
            return {"order": np.arange(3)}

        first = cache.get_or_create("order", CONFIG, produce)
        second = cache.get_or_create("order", CONFIG, produce)
        assert len(calls) == 1
        assert np.array_equal(first["order"], second["order"])

    def test_clear_memory_keeps_disk(self, tmp_path):
        cache = PlanArtifactCache(root=str(tmp_path))
        cache.put("order", CONFIG, {"order": np.arange(4)})
        cache.clear_memory()
        assert np.array_equal(cache.get("order", CONFIG)["order"], np.arange(4))
        assert cache.stats()["disk"] == 1

    def test_disabled_disk_is_session_local(self, tmp_path):
        cache = PlanArtifactCache(root=str(tmp_path), disk=False)
        cache.put("order", CONFIG, {"order": np.arange(4)})
        assert not os.path.exists(cache.root) or not os.listdir(cache.root)
        fresh = PlanArtifactCache(root=str(tmp_path), disk=False)
        assert fresh.get("order", CONFIG) is None


class TestMemoryLRU:
    """The bounded memory tier: REPRO_CACHE_MEM_ITEMS / memory_items."""

    def _configs(self, n):
        return [{**CONFIG, "read_time": float(i)} for i in range(n)]

    def test_unbounded_by_default(self, tmp_path):
        cache = PlanArtifactCache(root=str(tmp_path))
        for config in self._configs(12):
            cache.put("order", config, {"order": np.arange(3)})
        assert cache.memory_items == 0
        assert cache.stats()["evictions"] == 0
        assert cache.stats()["memory_entries"] == 12

    def test_eviction_round_trips_through_disk_bitwise(self, tmp_path):
        """An evicted entry is a disk hit, not a recompute, bit-for-bit."""
        rng = np.random.default_rng(11)
        cache = PlanArtifactCache(root=str(tmp_path), memory_items=2)
        configs = self._configs(3)
        payloads = [
            {"order": rng.permutation(64), "scores": rng.normal(size=64)}
            for _ in configs
        ]
        for config, payload in zip(configs, payloads):
            cache.put("order", config, payload)
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["memory_entries"] == 2
        assert stats["memory_cap"] == 2

        calls = []
        arrays = cache.get_or_create(
            "order", configs[0], lambda: calls.append(1)
        )
        assert calls == []  # served from disk, producer never ran
        assert cache.stats()["disk"] == 1
        for name in payloads[0]:
            assert np.array_equal(arrays[name], payloads[0][name])
            assert arrays[name].dtype == payloads[0][name].dtype

    def test_lru_evicts_least_recently_used(self, tmp_path):
        cache = PlanArtifactCache(root=str(tmp_path), memory_items=2)
        first, second, third = self._configs(3)
        cache.put("order", first, {"order": np.arange(1)})
        cache.put("order", second, {"order": np.arange(2)})
        cache.get("order", first)  # refresh: second is now the LRU entry
        cache.put("order", third, {"order": np.arange(3)})
        with cache._memory_lock:
            keys = set(cache._memory)
        assert cache.key("order", first) in keys
        assert cache.key("order", second) not in keys
        assert cache.key("order", third) in keys

    def test_env_cap_and_validation(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MEM_ITEMS", "1")
        cache = PlanArtifactCache(root=str(tmp_path))
        for config in self._configs(3):
            cache.put("order", config, {"order": np.arange(2)})
        assert cache.memory_items == 1
        assert cache.stats()["evictions"] == 2

        monkeypatch.setenv("REPRO_CACHE_MEM_ITEMS", "nope")
        with pytest.raises(ValueError):
            PlanArtifactCache(root=str(tmp_path))
        with pytest.raises(ValueError):
            PlanArtifactCache(root=str(tmp_path), memory_items=-1)

    def test_lookup_by_key_matches_get(self, tmp_path):
        """lookup(kind, key) is get() minus the config hashing."""
        cache = PlanArtifactCache(root=str(tmp_path))
        cache.put("order", CONFIG, {"order": np.arange(5)})
        key = cache.key("order", CONFIG)
        assert np.array_equal(cache.lookup("order", key)["order"], np.arange(5))
        fresh = PlanArtifactCache(root=str(tmp_path))
        assert np.array_equal(
            fresh.lookup("order", key)["order"], np.arange(5)
        )
        assert fresh.lookup("order", "0" * 32) is None


class TestCounterThreadSafety:
    def test_counters_exact_under_concurrent_traffic(self, tmp_path):
        """hits/misses stay read-modify-write-safe across threads.

        The serving layer reads the cache from the event loop while
        resolver threads write it; every counter update goes through
        ``_memory_lock``, so the totals must come out *exact* — an
        unlocked ``+= 1`` would drop increments under this hammering
        (the /statsz under-count bug).
        """
        import sys as _sys
        import threading
        from concurrent.futures import ThreadPoolExecutor

        cache = PlanArtifactCache(root=str(tmp_path), disk=False)
        configs = [{"i": i} for i in range(4)]
        for config in configs:
            cache.put("order", config, {"order": np.arange(3)})

        n_threads, iterations = 8, 300
        barrier = threading.Barrier(n_threads)
        switch = _sys.getswitchinterval()
        _sys.setswitchinterval(1e-6)  # force aggressive interleaving
        try:
            def hammer(worker):
                barrier.wait()
                for i in range(iterations):
                    hit = configs[(worker + i) % len(configs)]
                    assert cache.get("order", hit) is not None
                    assert cache.lookup("order", "0" * 32) is None

            with ThreadPoolExecutor(max_workers=n_threads) as pool:
                list(pool.map(hammer, range(n_threads)))
        finally:
            _sys.setswitchinterval(switch)

        stats = cache.stats()
        assert stats["memory"] == n_threads * iterations
        assert stats["misses"] == n_threads * iterations


@pytest.mark.parametrize("disk", [True, False])
def test_cold_vs_warm_artifacts_bitwise(tmp_path, disk):
    """Whatever the producer emitted is returned bit-for-bit on warm hits."""
    rng = np.random.default_rng(5)
    arrays = {
        "scores": rng.normal(size=257),
        "order": rng.permutation(257),
    }
    cache = PlanArtifactCache(root=str(tmp_path), disk=disk)
    cache.put("order", CONFIG, arrays)
    warm = (
        PlanArtifactCache(root=str(tmp_path)) if disk else cache
    ).get("order", CONFIG)
    for name in arrays:
        assert np.array_equal(warm[name], arrays[name])
        assert warm[name].dtype == arrays[name].dtype
