"""Algorithm 1 and the NWC sweep: end-to-end behaviour on a trained model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cim import CimAccelerator, DeviceConfig, MappingConfig
from repro.core import (
    MagnitudeScorer,
    RandomScorer,
    SwimConfig,
    SwimScorer,
    WeightSpace,
    selective_write_verify,
    sweep_nwc,
)
from repro.nn import evaluate_accuracy
from repro.utils.rng import RngStream


@pytest.fixture
def mapped(trained_lenet):
    model, data, clean = trained_lenet
    config = MappingConfig(weight_bits=4, device=DeviceConfig(bits=4, sigma=0.15))
    accelerator = CimAccelerator(model, mapping_config=config)
    yield model, data, clean, accelerator
    accelerator.clear()


def test_swim_config_validation():
    with pytest.raises(ValueError, match="delta_a"):
        SwimConfig(delta_a=-1)
    with pytest.raises(ValueError, match="granularity"):
        SwimConfig(granularity=0.0)


def test_algorithm1_meets_target_with_partial_selection(mapped):
    model, data, clean, accelerator = mapped
    rng = RngStream(10)
    result = selective_write_verify(
        model,
        accelerator,
        SwimScorer(max_batches=2),
        data.test_x[:200],
        data.test_y[:200],
        baseline_accuracy=clean,
        config=SwimConfig(delta_a=0.02, granularity=0.05),
        rng=rng,
        sense_x=data.train_x[:256],
        sense_y=data.train_y[:256],
    )
    assert result.met_target
    assert result.selected_fraction < 1.0
    assert 0.0 <= result.achieved_nwc <= 1.0
    assert len(result.accuracy_history) == len(result.nwc_history)


def test_algorithm1_requires_rng(mapped):
    model, data, clean, accelerator = mapped
    with pytest.raises(ValueError, match="rng"):
        selective_write_verify(
            model, accelerator, SwimScorer(), data.test_x, data.test_y,
            baseline_accuracy=clean,
        )


def test_algorithm1_nwc_history_monotone(mapped):
    model, data, clean, accelerator = mapped
    rng = RngStream(11)
    result = selective_write_verify(
        model,
        accelerator,
        RandomScorer(),
        data.test_x[:200],
        data.test_y[:200],
        baseline_accuracy=clean,
        config=SwimConfig(delta_a=0.01, granularity=0.1),
        rng=rng,
    )
    assert all(b >= a for a, b in zip(result.nwc_history, result.nwc_history[1:]))


def test_algorithm1_impossible_target_verifies_everything(mapped):
    """delta_a = -0.1 can never be met -> loop exhausts all groups."""
    model, data, clean, accelerator = mapped
    rng = RngStream(12)
    config = SwimConfig.__new__(SwimConfig)  # bypass validation for the probe
    object.__setattr__(config, "delta_a", 0.0)
    object.__setattr__(config, "granularity", 0.25)
    object.__setattr__(config, "eval_batch_size", 256)
    result = selective_write_verify(
        model, accelerator, SwimScorer(max_batches=1),
        data.test_x[:100], data.test_y[:100],
        baseline_accuracy=1.01,  # unreachable accuracy
        config=config, rng=rng,
    )
    assert result.selected_fraction == pytest.approx(1.0)
    assert not result.met_target


def test_sweep_endpoints_match_apply_none_and_all(mapped):
    model, data, clean, accelerator = mapped
    rng = RngStream(13)
    space = WeightSpace.from_model(model)
    scorer = SwimScorer(max_batches=1)
    accelerator.clear()
    order = scorer.ranking(model, space, data.train_x[:128], data.train_y[:128])
    accs, nwc = sweep_nwc(
        model, accelerator, order, space,
        data.test_x[:200], data.test_y[:200],
        (0.0, 1.0), rng.child("sweep"),
    )
    assert nwc[0] == 0.0
    assert nwc[1] == 1.0
    # NWC=1.0 must match the fully verified deployment accuracy.
    accelerator.apply_all()
    full = evaluate_accuracy(model, data.test_x[:200], data.test_y[:200])
    assert accs[1] == pytest.approx(full)


def test_sweep_achieved_nwc_tracks_targets(mapped):
    model, data, clean, accelerator = mapped
    rng = RngStream(14)
    space = WeightSpace.from_model(model)
    order = RandomScorer().ranking(
        model, space, None, None, rng=rng.child("rank")
    )
    targets = (0.0, 0.25, 0.5, 0.75, 1.0)
    _, achieved = sweep_nwc(
        model, accelerator, order, space,
        data.test_x[:100], data.test_y[:100],
        targets, rng.child("sweep"),
    )
    # Random selection: cycle share ~ weight share.
    np.testing.assert_allclose(achieved, targets, atol=0.08)


def test_swim_beats_random_at_low_nwc(mapped):
    """The headline claim, averaged over a few Monte Carlo draws."""
    model, data, clean, accelerator = mapped
    space = WeightSpace.from_model(model)
    root = RngStream(15)
    accelerator.clear()
    swim_order = SwimScorer(max_batches=2).ranking(
        model, space, data.train_x[:256], data.train_y[:256]
    )
    swim_accs = []
    random_accs = []
    for run in range(4):
        random_order = RandomScorer().ranking(
            model, space, None, None, rng=root.child("rand-order", run)
        )
        a_swim, _ = sweep_nwc(
            model, accelerator, swim_order, space,
            data.test_x[:200], data.test_y[:200], (0.1,),
            root.child("swim", run),
        )
        a_rand, _ = sweep_nwc(
            model, accelerator, random_order, space,
            data.test_x[:200], data.test_y[:200], (0.1,),
            root.child("rand", run),
        )
        swim_accs.append(a_swim[0])
        random_accs.append(a_rand[0])
    assert np.mean(swim_accs) > np.mean(random_accs) + 0.01


def test_overrides_do_not_touch_ideal_weights(mapped):
    model, data, clean, accelerator = mapped
    before = {n: p.data.copy() for n, p in model.named_parameters()}
    rng = RngStream(16)
    selective_write_verify(
        model, accelerator, MagnitudeScorer(),
        data.test_x[:100], data.test_y[:100],
        baseline_accuracy=clean,
        config=SwimConfig(delta_a=0.05, granularity=0.2),
        rng=rng,
    )
    accelerator.clear()
    for name, param in model.named_parameters():
        np.testing.assert_array_equal(param.data, before[name])
