"""Correctness of the single-pass second-derivative recursion (Sec. 3.3).

The recursion is *exact* in specific regimes and an approximation
elsewhere; these tests pin down both:

- exact for the last linear layer of any network (Eq. 8 has no cross
  terms: weight W_ji touches only output O_j);
- exact for every layer of a two-layer MLP under MSE loss (the loss
  Hessian w.r.t. outputs is diagonal and the network is one
  activation deep), for ReLU *and* smooth activations (tanh/sigmoid,
  exercising the g'' term of Eq. 9);
- a strong positive correlation with the true diagonal Hessian on deeper
  ReLU networks, where the method is approximate by design;
- structural properties: non-negativity for ReLU+CE networks, additivity
  over accumulation, invariance of ranking under output-preserving
  transformations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hessian_fd import fd_diagonal_hessian, fd_diagonal_hessian_sampled
from repro.core.second_derivative import (
    accumulate_second_derivatives,
    compute_gradients,
    compute_second_derivatives,
)
from repro.nn.layers import Conv2d, Flatten, Linear, MaxPool2d, ReLU, Sigmoid, Tanh
from repro.nn.losses import CrossEntropyLoss, MSELoss
from repro.nn.models import mlp
from repro.nn.module import Sequential
from repro.utils.stats import pearson

from .helpers import to_float64


def _last_layer_names(model):
    names = [name for name, _ in model.named_parameters()]
    return [n for n in names if n.rsplit(".", 1)[0] == names[-1].rsplit(".", 1)[0]]


def test_last_layer_exact_cross_entropy(rng):
    """Eq. 8 is exact for last-layer weights under any loss."""
    model = to_float64(mlp(rng.child("m"), (6, 10, 5), activation="relu"))
    x = rng.child("x").normal(size=(8, 6))
    y = rng.child("y").integers(0, 5, size=8)
    loss = CrossEntropyLoss()
    got = compute_second_derivatives(model, x, y, loss=loss)
    last = _last_layer_names(model)
    want = fd_diagonal_hessian(model, x, y, loss=loss, param_names=last, eps=1e-4)
    for name in last:
        np.testing.assert_allclose(got[name], want[name], atol=1e-5, rtol=1e-3)


@pytest.mark.parametrize("activation", ["relu", "tanh", "sigmoid"])
def test_two_layer_mse_exact_everywhere(rng, activation):
    """Two-layer MLP + MSE: the recursion is exact for *all* parameters.

    This is the strongest available exactness check and exercises the
    smooth-activation g'' term for tanh/sigmoid.
    """
    model = to_float64(mlp(rng.child("m"), (5, 7, 4), activation=activation))
    x = rng.child("x").normal(size=(6, 5))
    targets = rng.child("t").normal(size=(6, 4))
    loss = MSELoss()
    got = compute_second_derivatives(model, x, targets, loss=loss)
    want = fd_diagonal_hessian(model, x, targets, loss=loss, eps=1e-4)
    for name in want:
        np.testing.assert_allclose(
            got[name], want[name], atol=1e-4, rtol=1e-3,
            err_msg=f"curvature mismatch for {name}",
        )


def test_conv_last_stage_exact(rng):
    """Conv feature extractor + linear head: head curvature is exact."""
    model = to_float64(
        Sequential(
            Conv2d(1, 3, 3, padding=1, rng=rng.child("c")),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
            Linear(3 * 4 * 4, 5, rng=rng.child("fc")),
        )
    )
    x = rng.child("x").normal(size=(4, 1, 8, 8))
    y = rng.child("y").integers(0, 5, size=4)
    loss = CrossEntropyLoss()
    got = compute_second_derivatives(model, x, y, loss=loss)
    want = fd_diagonal_hessian(
        model, x, y, loss=loss, param_names=["4.weight", "4.bias"], eps=1e-4
    )
    np.testing.assert_allclose(got["4.weight"], want["4.weight"], atol=1e-5, rtol=1e-3)
    np.testing.assert_allclose(got["4.bias"], want["4.bias"], atol=1e-5, rtol=1e-3)


def test_deep_relu_correlation_with_true_hessian(rng):
    """On a 3-layer ReLU net the method is approximate but must correlate."""
    model = to_float64(mlp(rng.child("m"), (6, 12, 10, 4), activation="relu"))
    x = rng.child("x").normal(size=(16, 6))
    y = rng.child("y").integers(0, 4, size=16)
    loss = CrossEntropyLoss()
    got = compute_second_derivatives(model, x, y, loss=loss)
    want = fd_diagonal_hessian(model, x, y, loss=loss, eps=1e-3)
    got_flat = np.concatenate([got[n].ravel() for n in sorted(got)])
    want_flat = np.concatenate([want[n].ravel() for n in sorted(want)])
    r = pearson(got_flat, want_flat)
    assert r > 0.8, f"OBD curvature should track the true diagonal Hessian, r={r}"


def test_relu_cross_entropy_curvature_nonnegative(rng):
    """CE seeds p(1-p) >= 0; ReLU/linear propagation preserves the sign."""
    model = to_float64(mlp(rng.child("m"), (8, 16, 16, 5), activation="relu"))
    x = rng.child("x").normal(size=(12, 8))
    y = rng.child("y").integers(0, 5, size=12)
    curv = compute_second_derivatives(model, x, y)
    for name, values in curv.items():
        assert np.all(values >= 0.0), f"negative curvature in {name}"


def test_sampled_fd_matches_dense_fd(rng):
    model = to_float64(mlp(rng.child("m"), (4, 6, 3), activation="relu"))
    x = rng.child("x").normal(size=(5, 4))
    y = rng.child("y").integers(0, 3, size=5)
    loss = CrossEntropyLoss()
    dense = fd_diagonal_hessian(model, x, y, loss=loss, eps=1e-4)
    entries = [("0.weight", 0), ("0.weight", 5), ("2.weight", 7)]
    sampled = fd_diagonal_hessian_sampled(model, x, y, entries, loss=loss, eps=1e-4)
    want = np.array(
        [
            dense["0.weight"].ravel()[0],
            dense["0.weight"].ravel()[5],
            dense["2.weight"].ravel()[7],
        ]
    )
    np.testing.assert_allclose(sampled, want, rtol=1e-8)


def test_accumulate_averages_batches(rng):
    model = to_float64(mlp(rng.child("m"), (5, 8, 3), activation="relu"))
    x = rng.child("x").normal(size=(8, 5))
    y = rng.child("y").integers(0, 3, size=8)
    acc = accumulate_second_derivatives(model, x, y, batch_size=4)
    first = compute_second_derivatives(model, x[:4], y[:4])
    second = compute_second_derivatives(model, x[4:], y[4:])
    for name in acc:
        np.testing.assert_allclose(
            acc[name], 0.5 * (first[name] + second[name]), rtol=1e-10
        )


def test_gradients_interface_matches_backward(rng):
    model = to_float64(mlp(rng.child("m"), (5, 8, 3), activation="relu"))
    x = rng.child("x").normal(size=(8, 5))
    y = rng.child("y").integers(0, 3, size=8)
    grads = compute_gradients(model, x, y)
    for name, param in model.named_parameters():
        np.testing.assert_allclose(grads[name], param.grad)


def test_curvature_zeroed_between_calls(rng):
    model = to_float64(mlp(rng.child("m"), (5, 8, 3), activation="relu"))
    x = rng.child("x").normal(size=(8, 5))
    y = rng.child("y").integers(0, 3, size=8)
    first = compute_second_derivatives(model, x, y)
    second = compute_second_derivatives(model, x, y)
    for name in first:
        np.testing.assert_allclose(first[name], second[name], rtol=1e-12)


def test_smooth_activation_requires_backward_first(rng):
    """backward_second without backward must fail for smooth activations."""
    model = to_float64(mlp(rng.child("m"), (4, 6, 3), activation="tanh"))
    x = rng.child("x").normal(size=(4, 4))
    y = rng.child("y").integers(0, 3, size=4)
    loss = CrossEntropyLoss()
    loss(model(x), y)
    with pytest.raises(RuntimeError, match="backward"):
        model.backward_second(loss.second())


def test_curvature_scales_with_loss_scale(rng):
    """Scaling the loss scales curvature linearly (sanity of seeding)."""

    class ScaledCE(CrossEntropyLoss):
        def forward(self, logits, targets):
            return 3.0 * super().forward(logits, targets)

        def backward(self):
            return 3.0 * super().backward()

        def second(self):
            return 3.0 * super().second()

    model = to_float64(mlp(rng.child("m"), (5, 7, 3), activation="relu"))
    x = rng.child("x").normal(size=(6, 5))
    y = rng.child("y").integers(0, 3, size=6)
    base = compute_second_derivatives(model, x, y, loss=CrossEntropyLoss())
    scaled = compute_second_derivatives(model, x, y, loss=ScaledCE())
    for name in base:
        np.testing.assert_allclose(scaled[name], 3.0 * base[name], rtol=1e-10)
