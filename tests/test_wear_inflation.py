"""Wear-derived variance inflation: the endurance axis closes.

The ROADMAP item: ``variance_map(wear_inflation=)`` was a manual knob;
these tests pin the derived path — the endurance model's
sigma-growth-vs-cycling curve turns the observer's consumed fraction
into the inflation automatically, with the manual knob kept as an
override.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.cim import (
    CimAccelerator,
    DeviceTechnology,
    EnduranceModel,
    MappingConfig,
    get_technology,
    resolve_technology,
)
from repro.utils.rng import RngStream


class TestSigmaGrowthCurve:
    def test_fresh_devices_are_exactly_one(self):
        model = EnduranceModel(endurance_cycles=1e6, sigma_growth=0.8)
        assert model.wear_inflation(0.0) == 1.0
        assert EnduranceModel(sigma_growth=0.0).wear_inflation(0.7) == 1.0

    def test_monotone_in_consumed_fraction(self):
        model = EnduranceModel(endurance_cycles=1e6, sigma_growth=1.0,
                               growth_exponent=0.7)
        fractions = np.linspace(0.0, 1.0, 11)
        inflations = [model.wear_inflation(f) for f in fractions]
        assert np.all(np.diff(inflations) > 0)
        # Variance (not sigma) multiplier: full consumption at growth 1
        # doubles sigma, so the variance inflates 4x.
        assert EnduranceModel(sigma_growth=1.0).wear_inflation(1.0) == 4.0

    def test_clamped_beyond_the_budget(self):
        model = EnduranceModel(sigma_growth=0.5)
        assert model.wear_inflation(3.0) == model.wear_inflation(1.0)
        assert model.wear_inflation(-1.0) == 1.0

    def test_consumed_fraction(self):
        model = EnduranceModel(endurance_cycles=1e4)
        assert model.consumed_fraction(100) == pytest.approx(0.01)
        assert model.consumed_fraction(1e9) == 1.0

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            EnduranceModel(sigma_growth=-0.1)
        with pytest.raises(ValueError):
            EnduranceModel(growth_exponent=0.0)

    def test_technology_carries_the_curve(self):
        rram = get_technology("rram").endurance_model()
        assert rram.sigma_growth == 1.0
        assert rram.growth_exponent == 0.7
        mram = get_technology("mram").endurance_model()
        assert mram.wear_inflation(1.0) == 1.0  # effectively ageless

    def test_registry_round_trip_keeps_wear_fields(self):
        tech = replace(get_technology("fefet"), name="fefet-test",
                       wear_sigma_growth=0.33, wear_growth_exponent=1.4)
        clone = DeviceTechnology.from_dict(tech.to_dict())
        assert clone == tech
        assert clone.endurance_model().sigma_growth == 0.33


class TestDerivedVarianceMap:
    @pytest.fixture()
    def setup(self):
        tech = resolve_technology("rram")
        mapping = MappingConfig(weight_bits=4, device=tech.device_config())
        return tech, mapping, tech.build_stack()

    def test_summary_reports_consumed_fraction(self, setup):
        tech, mapping, stack = setup
        levels = np.tile(np.arange(16.0), (1, 4)).reshape(1, 8, 8)
        from repro.cim import StageContext, WriteVerifyConfig, write_verify

        ctx = StageContext.from_mapping(mapping)
        rng = RngStream(7)
        programmed = stack.program(levels, ctx, rng.child("p").generator)
        result = write_verify(
            levels[0], programmed[0], mapping.device, WriteVerifyConfig(),
            rng.child("v").generator,
        )
        stack.reset_observers()
        stack.observe("w", result.cycles[None])
        summary = stack.wear_summary()
        assert summary["consumed_fraction"] == pytest.approx(
            tech.endurance_model().consumed_fraction(
                summary["mean_pulses_per_device"]
            )
        )
        assert 0.0 < summary["consumed_fraction"] < 1.0

    def test_wear_summary_drives_inflation(self, setup):
        """variance_map(wear=summary) equals the manual equivalent."""
        tech, mapping, stack = setup
        summary = {"consumed_fraction": 0.25, "deployments": 2}
        derived = tech.endurance_model().wear_inflation(0.5)
        assert derived > 1.0
        via_wear = stack.variance_map(mapping, shape=(6, 5), wear=summary)
        via_knob = stack.variance_map(
            mapping, shape=(6, 5), wear_inflation=derived
        )
        assert np.array_equal(via_wear, via_knob)
        fresh = stack.variance_map(mapping, shape=(6, 5))
        assert np.all(via_wear > fresh)

    def test_bare_fraction_and_manual_override(self, setup):
        tech, mapping, stack = setup
        endurance = tech.endurance_model()
        assert stack.resolve_wear_inflation(wear=0.5) == pytest.approx(
            endurance.wear_inflation(0.5)
        )
        # The manual knob wins over any wear evidence.
        assert stack.resolve_wear_inflation(
            wear=0.5, wear_inflation=1.75
        ) == 1.75
        # Fresh when there is nothing to derive from.
        assert stack.resolve_wear_inflation(wear=None) == 1.0

    def test_no_observer_means_fresh(self, setup):
        from repro.cim import NonidealityStack, ProgrammingNoiseStage

        _, mapping, _ = setup
        bare = NonidealityStack(stages=(ProgrammingNoiseStage(),))
        assert bare.resolve_wear_inflation(wear=0.9) == 1.0

    def test_accelerator_feeds_its_own_wear(self, trained_lenet):
        """``variance_map(wear=True)`` inflates with the observed wear."""
        model, _, _ = trained_lenet
        accelerator = CimAccelerator(model, technology="rram")
        stream = RngStream(41).child("wear")
        accelerator.program(stream.child("program").generator)
        accelerator.write_verify_all(stream.child("verify").generator)
        fresh = accelerator.variance_map()
        worn = accelerator.variance_map(wear=True)
        summary = accelerator.wear_summary()
        expected = resolve_technology("rram").endurance_model().wear_inflation(
            summary["consumed_fraction"]
        )
        assert expected > 1.0
        for name in fresh:
            assert np.allclose(worn[name], fresh[name] * expected)
        accelerator.clear()
