"""Crossbar tile path vs the effective-weight shortcut."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cim.crossbar import (
    ConverterConfig,
    CrossbarConfig,
    CrossbarLinear,
    uniform_quantize_midrise,
)
from repro.cim.device import DeviceConfig
from repro.cim.mapping import MappingConfig, WeightMapper


def _make_layer(rng, sigma=0.0, rows=128, adc_bits=None, dac_bits=None,
                out_features=6, in_features=40):
    weights = rng.child("w").normal(size=(out_features, in_features)) * 0.2
    config = MappingConfig(weight_bits=8, device=DeviceConfig(bits=4, sigma=sigma))
    mapper = WeightMapper(config)
    mapped = mapper.map_tensor(weights)
    programmed = mapper.program_levels(mapped, rng.child("prog").generator)
    xbar = CrossbarLinear(
        weights,
        mapping_config=config,
        crossbar_config=CrossbarConfig(
            rows=rows,
            dac=ConverterConfig(bits=dac_bits),
            adc=ConverterConfig(bits=adc_bits),
        ),
        programmed_levels=programmed,
    )
    return xbar, weights


def test_ideal_converters_match_shortcut_exactly(rng):
    xbar, _ = _make_layer(rng, sigma=0.05)
    x = np.clip(rng.child("x").normal(size=(7, 40)) * 0.3, -1, 1)
    via_tiles = xbar(x)
    via_shortcut = x @ xbar.effective_weights().T
    np.testing.assert_allclose(via_tiles, via_shortcut, rtol=1e-10, atol=1e-10)


def test_tiling_does_not_change_ideal_result(rng):
    xbar_one, _ = _make_layer(rng, rows=64)
    xbar_many, _ = _make_layer(rng, rows=8)
    x = np.clip(rng.child("x").normal(size=(5, 40)) * 0.3, -1, 1)
    np.testing.assert_allclose(xbar_one(x), xbar_many(x), rtol=1e-10)


def test_noise_free_levels_reproduce_quantized_weights(rng):
    xbar, weights = _make_layer(rng, sigma=0.0)
    eff = xbar.effective_weights()
    # Quantization error only.
    assert np.abs(eff - weights).max() <= xbar.mapped.scale / 2 + 1e-12


def test_adc_resolution_converges_to_shortcut(rng):
    x = np.clip(rng.child("x").normal(size=(16, 40)) * 0.3, -1, 1)
    errors = []
    for bits in (4, 6, 8, 12):
        xbar, _ = _make_layer(rng, sigma=0.0, adc_bits=bits, rows=16)
        want = x @ xbar.effective_weights().T
        got = xbar(x)
        errors.append(np.abs(got - want).max())
    assert errors[-1] < errors[0]
    assert errors[-1] < 1e-2
    assert all(e2 <= e1 * 1.05 for e1, e2 in zip(errors, errors[1:]))


def test_dac_quantization_saturates_inputs(rng):
    xbar, _ = _make_layer(rng, dac_bits=8)
    x = np.full((2, 40), 5.0)  # far outside the DAC range
    out_sat = xbar(x)
    out_unit = xbar(np.ones((2, 40)))
    np.testing.assert_allclose(out_sat, out_unit, rtol=1e-9)


def test_uniform_quantizer_basics():
    values = np.linspace(-2, 2, 9)
    out = uniform_quantize_midrise(values, bits=2, full_range=1.0)
    assert out.min() >= -1.0 and out.max() <= 1.0
    # 2 bits -> 3 steps over [-1, 1]: levels at -1, -1/3, 1/3, 1.
    unique = np.unique(np.round(out, 6))
    assert len(unique) <= 4


def test_bias_added_digitally(rng):
    weights = rng.child("w").normal(size=(3, 10)) * 0.1
    bias = np.array([1.0, -2.0, 0.5])
    xbar = CrossbarLinear(weights, bias=bias)
    x = np.zeros((1, 10))
    np.testing.assert_allclose(xbar(x)[0], bias, atol=1e-12)


def test_rejects_bad_shapes(rng):
    weights = rng.child("w").normal(size=(3, 10))
    xbar = CrossbarLinear(weights)
    with pytest.raises(ValueError, match="expected"):
        xbar(np.zeros((2, 11)))
    with pytest.raises(ValueError, match="2-D"):
        CrossbarLinear(np.zeros((2, 3, 4)))
