"""Sensitivity scorers: registry, determinism, and discriminative power."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.selection import WeightSpace
from repro.core.sensitivity import (
    FisherScorer,
    GradientScorer,
    HessianFDScorer,
    MagnitudeScorer,
    RandomScorer,
    SwimScorer,
    build_scorer,
)
from repro.nn.models import mlp
from repro.utils.stats import spearman

from .helpers import to_float64


@pytest.fixture
def setup(rng):
    model = to_float64(mlp(rng.child("m"), (8, 12, 4), activation="relu"))
    space = WeightSpace.from_model(model)
    x = rng.child("x").normal(size=(32, 8))
    y = rng.child("y").integers(0, 4, size=32)
    return model, space, x, y


def test_build_scorer_registry():
    for name in ("swim", "magnitude", "random", "gradient", "fisher", "hessian_fd"):
        scorer = build_scorer(name)
        assert scorer.name == name
    with pytest.raises(KeyError, match="unknown"):
        build_scorer("nope")


def test_swim_scores_match_direct_curvature(setup):
    model, space, x, y = setup
    from repro.core.second_derivative import compute_second_derivatives

    scorer = SwimScorer(batch_size=x.shape[0])
    scores = scorer.scores(model, space, x, y)
    curv = compute_second_derivatives(model, x, y)
    want = space.flatten({n: curv[n] for n in space.names})
    np.testing.assert_allclose(scores, want, rtol=1e-10)


def test_swim_ranking_is_deterministic(setup):
    model, space, x, y = setup
    scorer = SwimScorer()
    a = scorer.ranking(model, space, x, y)
    b = scorer.ranking(model, space, x, y)
    np.testing.assert_array_equal(a, b)


def test_swim_tie_break_toggle(setup):
    model, space, x, y = setup
    with_tb = SwimScorer(use_magnitude_tie_break=True)
    without_tb = SwimScorer(use_magnitude_tie_break=False)
    assert with_tb.tie_break(model, space) is not None
    assert without_tb.tie_break(model, space) is None


def test_magnitude_scores_are_absolute_weights(setup):
    model, space, x, y = setup
    scores = MagnitudeScorer().scores(model, space, x, y)
    want = np.abs(space.gather_from_model(model, "data"))
    np.testing.assert_array_equal(scores, want)


def test_random_scorer_requires_rng(setup):
    model, space, x, y = setup
    with pytest.raises(ValueError, match="rng"):
        RandomScorer().scores(model, space, x, y)


def test_random_scorer_differs_across_streams(setup, rng):
    model, space, x, y = setup
    a = RandomScorer().scores(model, space, x, y, rng=rng.child("a"))
    b = RandomScorer().scores(model, space, x, y, rng=rng.child("b"))
    assert not np.array_equal(a, b)
    assert sorted(a) == list(range(space.total_size))


def test_swim_agrees_with_fd_reference_ranking(setup):
    """Spearman correlation between SWIM and the exact FD diagonal Hessian."""
    model, space, x, y = setup
    swim = SwimScorer(batch_size=x.shape[0]).scores(model, space, x, y)
    fd = HessianFDScorer(eps=1e-3).scores(model, space, x, y)
    rho = spearman(swim, fd)
    assert rho > 0.8, f"rank agreement too weak: {rho}"


def test_gradient_scores_near_zero_at_convergence(setup, rng):
    """After training to (local) convergence gradients shrink; curvature
    stays informative — the paper's argument for second derivatives."""
    model, space, x, y = setup
    from repro.nn import SGD
    from repro.nn.losses import CrossEntropyLoss
    from repro.nn.trainer import Trainer, TrainConfig

    trainer = Trainer(SGD(model.parameters(), lr=0.2, momentum=0.9),
                      rng=rng.child("fit"))
    trainer.fit(model, x, y, config=TrainConfig(epochs=120, batch_size=32))
    grads = GradientScorer().scores(model, space, x, y)
    curv = SwimScorer(batch_size=x.shape[0]).scores(model, space, x, y)
    assert np.abs(grads).mean() < 1e-3
    assert curv.max() > np.abs(grads).mean()


def test_fisher_scores_nonnegative_and_finite(setup):
    model, space, x, y = setup
    scores = FisherScorer(batch_size=8, max_batches=3).scores(model, space, x, y)
    assert scores.shape == (space.total_size,)
    assert np.all(scores >= 0) and np.all(np.isfinite(scores))
