"""Write-verify loop: convergence, tolerance, cycle statistics (Sec. 4.1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cim.device import DeviceConfig
from repro.cim.noise import ResidualModel
from repro.cim.write_verify import WriteVerifyConfig, calibrate_alpha, write_verify


@pytest.fixture
def device():
    return DeviceConfig(bits=4, sigma=0.1)


def _run(device, config, n=20000, seed=0):
    gen = np.random.default_rng(seed)
    targets = gen.uniform(0, device.max_level, size=n)
    initial = device.program(targets, gen)
    return targets, write_verify(targets, initial, device, config, gen)


def test_all_devices_converge_within_tolerance(device):
    config = WriteVerifyConfig()
    targets, result = _run(device, config)
    assert bool(result.converged.all())
    errors = np.abs(result.levels - targets) / device.max_level
    assert errors.max() <= config.tolerance + 1e-12


def test_mean_cycles_near_paper_calibration(device):
    """Paper Sec. 4.1: ~10 average cycles at sigma=0.1, tolerance=0.06."""
    _, result = _run(device, WriteVerifyConfig())
    assert 7.0 <= result.mean_cycles <= 13.0


def test_post_verify_residual_well_below_initial_sigma(device):
    """Write-verify shrinks the weight deviation from 10% FS to < 5% FS."""
    config = WriteVerifyConfig()
    targets, result = _run(device, config)
    residual = (result.levels - targets) / device.max_level
    assert residual.std() < 0.05
    assert residual.std() < 0.5 * device.sigma


def test_some_devices_need_no_rewrite(device):
    """Paper: "some may not need rewrite at all; others need a lot"."""
    _, result = _run(device, WriteVerifyConfig())
    assert (result.cycles == 0).mean() > 0.2
    assert result.cycles.max() > 15


def test_zero_cycles_when_already_converged(device):
    config = WriteVerifyConfig()
    targets = np.full(100, 7.0)
    result = write_verify(targets, targets.copy(), device, config,
                          np.random.default_rng(0))
    assert result.cycles.sum() == 0
    assert bool(result.converged.all())


def test_larger_sigma_needs_more_cycles(device):
    config = WriteVerifyConfig()
    _, low = _run(device.with_sigma(0.1), config, seed=1)
    _, high = _run(device.with_sigma(0.2), config, seed=1)
    assert high.mean_cycles > low.mean_cycles


def test_tighter_tolerance_needs_more_cycles(device):
    _, loose = _run(device, WriteVerifyConfig(tolerance=0.1), seed=2)
    _, tight = _run(device, WriteVerifyConfig(tolerance=0.03), seed=2)
    assert tight.mean_cycles > loose.mean_cycles


def test_calibrate_alpha_hits_target(device):
    alpha, achieved = calibrate_alpha(device, target_mean_cycles=10.0,
                                      n_devices=8000)
    assert achieved == pytest.approx(10.0, abs=1.5)
    assert 0.005 < alpha < 0.2


def test_max_pulses_bounds_loop(device):
    """With absurdly weak pulses the loop terminates at max_pulses."""
    config = WriteVerifyConfig(alpha=0.005, pulse_sigma=0.0, max_pulses=5)
    targets, result = _run(device, config, n=2000, seed=3)
    assert result.cycles.max() <= 5


def test_deterministic_given_seed(device):
    config = WriteVerifyConfig()
    gen_a = np.random.default_rng(7)
    gen_b = np.random.default_rng(7)
    targets = np.linspace(0, device.max_level, 500)
    initial = device.program(targets, np.random.default_rng(8))
    res_a = write_verify(targets, initial, device, config, gen_a)
    res_b = write_verify(targets, initial, device, config, gen_b)
    np.testing.assert_array_equal(res_a.levels, res_b.levels)
    np.testing.assert_array_equal(res_a.cycles, res_b.cycles)


def test_residual_model_matches_simulation(device):
    """Fast-path residual sampler reproduces the honest loop's std."""
    model = ResidualModel.from_simulation(device, n_devices=8192)
    gen = np.random.default_rng(11)
    samples = model.sample_levels(50000, gen)
    assert samples.std() == pytest.approx(model.residual_std_levels(), rel=0.05)
    tol_levels = WriteVerifyConfig().tolerance * device.max_level
    assert np.abs(samples).max() <= tol_levels * 1.01


@settings(max_examples=20, deadline=None)
@given(
    sigma=st.floats(min_value=0.02, max_value=0.25),
    tolerance=st.floats(min_value=0.02, max_value=0.15),
)
def test_write_verify_always_within_tolerance(sigma, tolerance):
    """Property: whatever the operating point, converged devices meet spec."""
    device = DeviceConfig(bits=4, sigma=sigma)
    config = WriteVerifyConfig(tolerance=tolerance, max_pulses=500)
    gen = np.random.default_rng(17)
    targets = gen.uniform(0, device.max_level, size=500)
    initial = device.program(targets, gen)
    result = write_verify(targets, initial, device, config, gen)
    errors = np.abs(result.levels - targets) / device.max_level
    assert errors[result.converged].max(initial=0.0) <= tolerance + 1e-9


# ---------------------------------------------------------------------------
# Randomized properties of the masked pulse loop (batched Monte Carlo PR).
# ---------------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    tolerance=st.floats(min_value=0.01, max_value=0.2),
    alpha=st.floats(min_value=0.02, max_value=0.9),
    sigma=st.floats(min_value=0.01, max_value=0.3),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_masked_loop_terminates_and_accounts_cycles(tolerance, alpha, sigma, seed):
    """The loop always ends; cycle accounting is consistent with the mask.

    Non-converged devices were active on every pulse, so they carry
    exactly ``max_pulses`` cycles; converged devices carry at most that;
    devices within tolerance on arrival carry zero.
    """
    device = DeviceConfig(bits=4, sigma=sigma)
    config = WriteVerifyConfig(tolerance=tolerance, alpha=alpha,
                               pulse_sigma=0.01, max_pulses=60)
    gen = np.random.default_rng(seed)
    targets = gen.uniform(0, device.max_level, size=300)
    initial = device.program(targets, gen)
    result = write_verify(targets, initial, device, config, gen)

    tol_levels = tolerance * device.max_level
    assert result.cycles.max(initial=0) <= config.max_pulses
    assert (result.cycles[~result.converged] == config.max_pulses).all()
    on_arrival = np.abs(initial - targets) <= tol_levels
    assert (result.cycles[on_arrival] == 0).all()
    errors = np.abs(result.levels - targets)
    assert errors[result.converged].max(initial=0.0) <= tol_levels + 1e-9


@settings(max_examples=30, deadline=None)
@given(
    tolerance=st.floats(min_value=0.01, max_value=0.15),
    alpha=st.floats(min_value=0.02, max_value=0.9),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_noiseless_cycle_counts_are_argmin_of_convergence(tolerance, alpha, seed):
    """With no pulse noise, cycles == first pulse index within tolerance.

    The deterministic trajectory is replayed with the loop's own update
    rule, so the assertion is exact: the recorded cycle count is the
    argmin over pulses of the convergence condition.
    """
    device = DeviceConfig(bits=4, sigma=0.15)
    config = WriteVerifyConfig(tolerance=tolerance, alpha=alpha,
                               pulse_sigma=0.0, max_pulses=400)
    gen = np.random.default_rng(seed)
    targets = gen.uniform(0, device.max_level, size=200)
    initial = device.program(targets, gen)
    result = write_verify(targets, initial, device, config, gen)
    assert bool(result.converged.all())

    tol_levels = config.tolerance * device.max_level
    levels = initial.copy()
    expected = np.zeros(targets.shape, dtype=np.int64)
    active = np.abs(levels - targets) > tol_levels
    pulse = 0
    while active.any() and pulse < config.max_pulses:
        error = np.where(active, targets - levels, 0.0)
        levels = levels + config.alpha * error
        expected[active] += 1
        active &= np.abs(levels - targets) > tol_levels
        pulse += 1
    np.testing.assert_array_equal(result.cycles, expected)


@settings(max_examples=15, deadline=None)
@given(
    tolerance=st.floats(min_value=0.02, max_value=0.15),
    alpha=st.floats(min_value=0.05, max_value=0.5),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_trial_batched_loop_matches_per_trial_properties(tolerance, alpha, seed):
    """The (n_trials, ...) masked loop honors the same per-device contract."""
    from repro.cim.write_verify import write_verify_trials

    device = DeviceConfig(bits=4, sigma=0.1)
    config = WriteVerifyConfig(tolerance=tolerance, alpha=alpha,
                               pulse_sigma=0.005, max_pulses=200)
    gen = np.random.default_rng(seed)
    targets = gen.uniform(0, device.max_level, size=100)
    initial = np.stack([device.program(targets, gen) for _ in range(4)])
    result = write_verify_trials(targets, initial, device, config, rng=gen)

    assert result.levels.shape == (4, 100)
    tol_levels = tolerance * device.max_level
    errors = np.abs(result.levels - targets[None, :])
    assert errors[result.converged].max(initial=0.0) <= tol_levels + 1e-9
    assert (result.cycles[~result.converged] == config.max_pulses).all()
    # Trials are independent: identical targets, different noise draws.
    assert not np.allclose(result.levels[0], result.levels[1])
