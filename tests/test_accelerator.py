"""CimAccelerator: the program / verify / select / deploy protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cim.accelerator import CimAccelerator, weighted_layer_names
from repro.cim.device import DeviceConfig
from repro.cim.mapping import MappingConfig
from repro.nn.models import lenet, mlp


@pytest.fixture
def small_model(rng):
    return mlp(rng.child("model"), (12, 16, 4), activation="relu")


@pytest.fixture
def accelerator(small_model):
    config = MappingConfig(weight_bits=4, device=DeviceConfig(bits=4, sigma=0.1))
    return CimAccelerator(small_model, mapping_config=config)


def test_weighted_layer_names_finds_all(rng):
    model = lenet(rng.child("m"))
    names = weighted_layer_names(model)
    assert len(names) == 5  # 2 conv + 3 fc
    assert all(name.endswith(".weight") for name in names)


def test_protocol_order_enforced(accelerator, rng):
    with pytest.raises(RuntimeError, match="program"):
        accelerator.write_verify_all(rng.child("wv").generator)
    accelerator.program(rng.child("p").generator)
    with pytest.raises(RuntimeError, match="write_verify_all"):
        accelerator.apply_selection({})


def test_apply_none_deploys_raw_noisy_weights(accelerator, small_model, rng):
    accelerator.program(rng.child("p").generator)
    accelerator.write_verify_all(rng.child("wv").generator)
    nwc = accelerator.apply_none()
    assert nwc == 0.0
    ideal = accelerator.ideal_weights()
    for name, layer in accelerator._layers.items():
        deviation = np.abs(layer.weight_override - ideal[name])
        assert deviation.max() > 0  # noise present


def test_apply_all_deploys_verified_weights(accelerator, rng):
    accelerator.program(rng.child("p").generator)
    accelerator.write_verify_all(rng.child("wv").generator)
    nwc = accelerator.apply_all()
    assert nwc == 1.0
    ideal = accelerator.ideal_weights()
    config = accelerator.mapping_config
    tol_codes = accelerator.wv_config.tolerance * config.device.max_level
    max_code_err = tol_codes * config.slice_weights.sum()
    for name, mapped in accelerator._mapped.items():
        layer = accelerator._layers[name]
        err = np.abs(layer.weight_override - ideal[name]) / mapped.scale
        assert err.max() <= max_code_err + 1e-9


def test_partial_selection_nwc_between_zero_and_one(accelerator, rng):
    accelerator.program(rng.child("p").generator)
    accelerator.write_verify_all(rng.child("wv").generator)
    masks = {}
    for name, mapped in accelerator._mapped.items():
        mask = np.zeros(mapped.codes.shape, dtype=bool)
        mask.reshape(-1)[:: 2] = True  # half the weights
        masks[name] = mask
    nwc = accelerator.apply_selection(masks)
    assert 0.2 < nwc < 0.8


def test_selection_improves_weight_accuracy(accelerator, rng):
    """Verified weights must sit closer to ideal than raw programmed ones."""
    accelerator.program(rng.child("p").generator)
    accelerator.write_verify_all(rng.child("wv").generator)
    ideal = accelerator.ideal_weights()

    accelerator.apply_none()
    raw_err = sum(
        float(np.square(layer.weight_override - ideal[name]).sum())
        for name, layer in accelerator._layers.items()
    )
    accelerator.apply_all()
    verified_err = sum(
        float(np.square(layer.weight_override - ideal[name]).sum())
        for name, layer in accelerator._layers.items()
    )
    assert verified_err < raw_err * 0.5


def test_apply_ideal_matches_quantized_weights(accelerator, rng):
    accelerator.apply_ideal()
    ideal = accelerator.ideal_weights()
    for name, layer in accelerator._layers.items():
        np.testing.assert_allclose(layer.weight_override, ideal[name], atol=1e-6)


def test_clear_restores_float_model(accelerator, small_model, rng):
    accelerator.program(rng.child("p").generator)
    accelerator.write_verify_all(rng.child("wv").generator)
    accelerator.apply_all()
    accelerator.clear()
    for layer in accelerator._layers.values():
        assert layer.weight_override is None


def test_weight_cycles_shape_and_sign(accelerator, rng):
    accelerator.program(rng.child("p").generator)
    accelerator.write_verify_all(rng.child("wv").generator)
    cycles = accelerator.weight_cycles()
    for name, mapped in accelerator._mapped.items():
        assert cycles[name].shape == mapped.codes.shape
        assert (cycles[name] >= 0).all()
    assert accelerator.total_cycles() > 0


def test_mask_shape_validated(accelerator, rng):
    accelerator.program(rng.child("p").generator)
    accelerator.write_verify_all(rng.child("wv").generator)
    bad = {accelerator.weight_names[0]: np.ones((1, 1), dtype=bool)}
    with pytest.raises(ValueError, match="mask shape"):
        accelerator.apply_selection(bad)


def test_num_weights_counts_mapped_tensors_only(accelerator, small_model):
    mapped = accelerator.num_weights()
    want = sum(
        p.size for name, p in small_model.named_parameters() if "weight" in name
    )
    assert mapped == want


def test_program_invalidates_previous_verify(accelerator, rng):
    accelerator.program(rng.child("p").generator)
    accelerator.write_verify_all(rng.child("wv").generator)
    accelerator.program(rng.child("p2").generator)
    with pytest.raises(RuntimeError):
        accelerator.apply_all()


def test_model_without_weighted_layers_rejected():
    from repro.nn.layers import ReLU
    from repro.nn.module import Sequential

    with pytest.raises(ValueError, match="no weighted layers"):
        CimAccelerator(Sequential(ReLU()))
