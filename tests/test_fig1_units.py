"""Unit-level pieces of the Fig. 1 study (the full run is a bench)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.selection import WeightSpace
from repro.experiments.fig1 import Fig1Config, _sample_entries
from repro.nn.models import mlp
from repro.utils.rng import RngStream


@pytest.fixture
def space(rng):
    # Deliberately imbalanced tensors: (4->100) dwarfs (100->3).
    model = mlp(rng.child("m"), (4, 100, 3))
    return WeightSpace.from_model(model)


def test_sampling_is_stratified_across_tensors(space):
    indices = _sample_entries(space, 20, RngStream(1).child("s"))
    # Tensor boundaries.
    first_size = int(np.prod(space.shape_of(space.names[0])))
    in_first = int((indices < first_size).sum())
    in_second = int((indices >= first_size).sum())
    # Uniform sampling would put ~10% in the second tensor; stratified
    # sampling gives both tensors comparable representation.
    assert in_first >= 5
    assert in_second >= 5


def test_sampling_respects_budget_and_uniqueness(space):
    indices = _sample_entries(space, 10, RngStream(2).child("s"))
    assert indices.size <= 10
    assert len(np.unique(indices)) == indices.size
    assert indices.max() < space.total_size


def test_sampling_deterministic(space):
    a = _sample_entries(space, 16, RngStream(3).child("s"))
    b = _sample_entries(space, 16, RngStream(3).child("s"))
    np.testing.assert_array_equal(a, b)


def test_config_defaults_match_paper_setting():
    config = Fig1Config()
    assert config.sigma == 0.1  # the paper's typical device sigma
    assert config.device_bits == 4  # K = 4 (Sec. 4.1)
    assert config.bypass_act_quant  # smooth-path analysis (documented)
