"""Numerical helpers shared by the test suite (finite differences etc.)."""

from __future__ import annotations

import numpy as np

from repro.nn.losses import CrossEntropyLoss


def to_float64(model):
    """Cast all parameters of a model to float64 in place (for FD checks)."""
    for param in model.parameters():
        param.data = param.data.astype(np.float64)
        param.zero_grad()
        param.zero_curvature()
    return model


def loss_of(model, loss, x, y):
    """Scalar loss of ``model`` on one batch."""
    return loss(model(x), y)


def fd_gradient(model, loss, x, y, param, eps=1e-5):
    """Central-difference gradient of the loss w.r.t. one parameter tensor."""
    grad = np.zeros_like(param.data)
    flat = param.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        f_plus = loss_of(model, loss, x, y)
        flat[i] = orig - eps
        f_minus = loss_of(model, loss, x, y)
        flat[i] = orig
        grad_flat[i] = (f_plus - f_minus) / (2 * eps)
    return grad


def fd_second_derivative(model, loss, x, y, param, eps=1e-4):
    """Central-difference diagonal second derivative (paper Eq. 6)."""
    curv = np.zeros_like(param.data)
    flat = param.data.reshape(-1)
    curv_flat = curv.reshape(-1)
    f_zero = loss_of(model, loss, x, y)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        f_plus = loss_of(model, loss, x, y)
        flat[i] = orig - eps
        f_minus = loss_of(model, loss, x, y)
        flat[i] = orig
        curv_flat[i] = (f_plus - 2 * f_zero + f_minus) / (eps * eps)
    return curv


def analytic_grads(model, loss, x, y):
    """Run forward + backward; returns the scalar loss."""
    model.zero_grad()
    value = loss(model(x), y)
    model.backward(loss.backward())
    return value


def analytic_curvature(model, loss, x, y):
    """Run forward + backward + backward_second; returns the scalar loss."""
    model.zero_grad()
    model.zero_curvature()
    value = loss(model(x), y)
    model.backward(loss.backward())
    model.backward_second(loss.second())
    return value


def default_loss():
    """The loss used by most checks."""
    return CrossEntropyLoss()
