"""Utilities: RNG streams, statistics, tables, plots, serialization, cache."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.ascii_plot import line_plot, scatter_plot
from repro.utils.cache import ArtifactCache, config_key
from repro.utils.rng import RngStream, derive_seed
from repro.utils.serialization import load_state_dict, save_state_dict
from repro.utils.stats import (
    bootstrap_mean_ci,
    pearson,
    running_mean_converged,
    spearman,
    summarize,
)
from repro.utils.tables import Table, format_markdown, format_table


# ------------------------------------------------------------------ rng

def test_same_path_same_stream():
    root = RngStream(7)
    a = root.child("x", 1).normal(size=4)
    b = RngStream(7).child("x", 1).normal(size=4)
    np.testing.assert_array_equal(a, b)


def test_different_paths_independent():
    root = RngStream(7)
    a = root.child("x", 1).normal(size=100)
    b = root.child("x", 2).normal(size=100)
    assert abs(pearson(a, b)) < 0.5


def test_child_unaffected_by_draw_order():
    root_a = RngStream(9)
    root_a.child("first").normal(size=10)  # consume some entropy
    late = root_a.child("target").normal(size=4)
    early = RngStream(9).child("target").normal(size=4)
    np.testing.assert_array_equal(late, early)


def test_derive_seed_stable_and_distinct():
    assert derive_seed(1, "a") == derive_seed(1, "a")
    assert derive_seed(1, "a") != derive_seed(1, "b")
    assert derive_seed(1, "a") != derive_seed(2, "a")


def test_child_requires_path():
    with pytest.raises(ValueError):
        RngStream(1).child()


# ---------------------------------------------------------------- stats

def test_summarize_basics():
    stat = summarize([1.0, 2.0, 3.0])
    assert stat.mean == pytest.approx(2.0)
    assert stat.n == 3
    assert "±" in str(stat)
    with pytest.raises(ValueError):
        summarize([])


def test_pearson_known_values():
    x = np.arange(10.0)
    assert pearson(x, 2 * x + 1) == pytest.approx(1.0)
    assert pearson(x, -x) == pytest.approx(-1.0)
    assert pearson(x, np.ones(10)) == 0.0


def test_spearman_monotone_invariance():
    x = np.array([1.0, 2.0, 3.0, 4.0])
    assert spearman(x, np.exp(x)) == pytest.approx(1.0)


def test_bootstrap_ci_contains_mean():
    values = np.random.default_rng(0).normal(5.0, 1.0, size=200)
    low, high = bootstrap_mean_ci(values, seed=1)
    assert low < values.mean() < high
    assert high - low < 1.0


def test_running_mean_convergence_detects():
    steady = np.concatenate([np.random.default_rng(0).normal(1, 0.5, 20),
                             np.full(80, 1.0)])
    assert running_mean_converged(steady, rel_tol=0.05)
    assert not running_mean_converged(np.arange(100.0), rel_tol=0.01)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10000))
def test_pearson_bounds_property(seed):
    gen = np.random.default_rng(seed)
    x = gen.normal(size=30)
    y = gen.normal(size=30)
    assert -1.0 - 1e-9 <= pearson(x, y) <= 1.0 + 1e-9


# ---------------------------------------------------------------- tables

def test_table_render_aligns():
    table = Table(["a", "bb"], title="T")
    table.add_row([1, "xyz"])
    table.add_separator()
    table.add_row(["22", "y"])
    text = table.render()
    assert "T" in text and "xyz" in text
    widths = {len(line) for line in text.splitlines()[2:]}
    assert len(widths) == 1  # all body lines equal width


def test_table_rejects_bad_row():
    table = Table(["a", "b"])
    with pytest.raises(ValueError):
        table.add_row([1])


def test_markdown_and_csv():
    table = Table(["a", "b"])
    table.add_row(["1", "2,3"])
    md = table.render_markdown()
    assert md.startswith("| a | b |")
    csv = table.to_csv()
    assert "2;3" in csv  # comma escaped


def test_format_helpers_direct():
    text = format_table(["h"], [["v"], None])
    assert "h" in text
    md = format_markdown(["h"], [["v"]], title="X")
    assert "### X" in md


# ----------------------------------------------------------------- plots

def test_line_plot_contains_markers():
    text = line_plot({"s1": ([0, 1, 2], [0, 1, 4]),
                      "s2": ([0, 1, 2], [4, 1, 0])},
                     width=40, height=10, title="demo")
    assert "demo" in text
    assert "legend" in text
    assert "o" in text and "x" in text


def test_scatter_plot_runs():
    text = scatter_plot([1, 2, 3], [3, 1, 2], width=30, height=8)
    assert "legend" in text


def test_line_plot_rejects_empty():
    with pytest.raises(ValueError):
        line_plot({})


# --------------------------------------------------------- serialization

def test_state_dict_roundtrip(tmp_path):
    path = os.path.join(tmp_path, "model.npz")
    state = {"w": np.arange(6).reshape(2, 3), "b": np.zeros(3)}
    save_state_dict(path, state, meta={"accuracy": 0.93})
    loaded, meta = load_state_dict(path)
    np.testing.assert_array_equal(loaded["w"], state["w"])
    assert meta["accuracy"] == 0.93


def test_reserved_key_rejected(tmp_path):
    with pytest.raises(ValueError, match="reserved"):
        save_state_dict(os.path.join(tmp_path, "x.npz"),
                        {"__meta_json__": np.zeros(1)})


# ----------------------------------------------------------------- cache

def test_cache_get_or_create(tmp_path):
    cache = ArtifactCache(root=str(tmp_path), namespace="t")
    calls = []

    def producer():
        calls.append(1)
        return {"v": np.ones(3)}

    def saver(path, artifact):
        save_state_dict(path, artifact)

    def loader(path):
        return load_state_dict(path)[0]

    config = {"a": 1}
    first = cache.get_or_create(config, producer, loader, saver)
    second = cache.get_or_create(config, producer, loader, saver)
    assert len(calls) == 1
    np.testing.assert_array_equal(first["v"], second["v"])
    assert cache.has(config)


def test_config_key_stable_and_distinct():
    assert config_key({"a": 1, "b": 2}) == config_key({"b": 2, "a": 1})
    assert config_key({"a": 1}) != config_key({"a": 2})
