"""Module infrastructure: traversal, modes, state dicts with buffers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import BatchNorm2d, Conv2d, Linear, ReLU, Sequential
from repro.nn.models import lenet, resnet18
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.nn.quant import ActQuant


def test_parameter_registration(rng):
    layer = Linear(3, 2, rng=rng.child("l"))
    names = [name for name, _ in layer.named_parameters()]
    assert names == ["weight", "bias"]


def test_nested_names(rng):
    model = Sequential(
        Linear(3, 4, rng=rng.child("a")), ReLU(), Linear(4, 2, rng=rng.child("b"))
    )
    names = [name for name, _ in model.named_parameters()]
    assert names == ["0.weight", "0.bias", "2.weight", "2.bias"]


def test_named_modules_paths(rng):
    model = Sequential(Linear(3, 4, rng=rng.child("a")), ReLU())
    paths = [name for name, _ in model.named_modules()]
    assert paths == ["", "0", "1"]


def test_train_eval_recursive(rng):
    model = Sequential(Conv2d(1, 2, 3, rng=rng.child("c")), BatchNorm2d(2))
    model.eval()
    assert all(not m.training for m in model.modules())
    model.train()
    assert all(m.training for m in model.modules())


def test_num_parameters_counts(rng):
    model = Sequential(Linear(3, 4, rng=rng.child("a")))
    assert model.num_parameters() == 3 * 4 + 4


def test_state_dict_roundtrip_with_buffers(rng):
    bn = BatchNorm2d(3)
    aq = ActQuant(bits=4)
    model = Sequential(Conv2d(2, 3, 3, rng=rng.child("c")), bn, ReLU(), aq)
    model.train()
    x = rng.child("x").normal(size=(4, 2, 5, 5)).astype(np.float32)
    model(x)  # populate running stats and quantizer peak
    state = model.state_dict()
    assert any(key.startswith("buffer::") for key in state)

    clone = Sequential(
        Conv2d(2, 3, 3, rng=rng.child("c2")), BatchNorm2d(3), ReLU(),
        ActQuant(bits=4),
    )
    clone.load_state_dict(state)
    np.testing.assert_allclose(clone[1].running_mean, bn.running_mean)
    np.testing.assert_allclose(clone[1].running_var, bn.running_var)
    assert clone[3].running_peak == pytest.approx(aq.running_peak)
    for (_, a), (_, b) in zip(model.named_parameters(), clone.named_parameters()):
        np.testing.assert_array_equal(a.data, b.data)


def test_state_dict_mismatch_raises(rng):
    model = Sequential(Linear(3, 2, rng=rng.child("l")))
    state = model.state_dict()
    del state["0.bias"]
    with pytest.raises(KeyError, match="missing"):
        model.load_state_dict(state)
    state = model.state_dict()
    state["extra"] = np.zeros(1)
    with pytest.raises(KeyError, match="unexpected"):
        model.load_state_dict(state)


def test_eval_reproducibility_after_reload(rng):
    """A trained-ish model reloaded from its state dict computes the same
    outputs — the property the model-zoo cache depends on."""
    from repro.utils.rng import RngStream

    model = lenet(RngStream(3).child("m"), conv_channels=(3, 6),
                  fc_features=(24, 16), act_bits=4)
    model.train()
    x = rng.child("x").normal(size=(8, 1, 28, 28)).astype(np.float32)
    model(x)
    model.eval()
    want = model(x)

    clone = lenet(RngStream(4).child("m"), conv_channels=(3, 6),
                  fc_features=(24, 16), act_bits=4)
    clone.load_state_dict(model.state_dict())
    clone.eval()
    np.testing.assert_allclose(clone(x), want, atol=1e-6)


def test_zero_grad_and_curvature(rng):
    model = Sequential(Linear(3, 2, rng=rng.child("l")))
    param = model[0].weight
    param.accumulate_grad(np.ones_like(param.data))
    param.accumulate_curvature(np.ones_like(param.data))
    model.zero_grad()
    model.zero_curvature()
    np.testing.assert_array_equal(param.grad, 0)
    np.testing.assert_array_equal(param.curvature, 0)


def test_register_module_type_checked():
    class Holder(Module):
        pass

    holder = Holder()
    with pytest.raises(TypeError, match="Module"):
        holder.register_module("x", object())


def test_register_buffer_requires_existing_attribute():
    class Holder(Module):
        pass

    holder = Holder()
    with pytest.raises(AttributeError):
        holder.register_buffer_name("nope")


def test_resnet_parameter_count_scales_with_width(rng):
    small = resnet18(rng.child("s"), width_mult=0.125)
    big = resnet18(rng.child("b"), width_mult=0.25)
    assert big.num_parameters() > small.num_parameters() * 2


def test_parameter_copy_shape_checked():
    param = Parameter(np.zeros((2, 3)))
    with pytest.raises(ValueError, match="shape"):
        param.copy_(np.zeros((3, 2)))
