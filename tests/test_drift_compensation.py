"""Drift compensation: exact mean rescale, no-op at t0, accuracy rescue."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cim import (
    CimAccelerator,
    DriftCompensationStage,
    RetentionModel,
    get_technology,
)
from repro.nn.models import mlp
from repro.utils.rng import RngStream

from .helpers import to_float64

ONE_MONTH = 2.592e6


def test_decay_moments_match_monte_carlo():
    """The clipped-Gaussian closed form is what apply() actually draws."""
    model = RetentionModel(nu=0.01, sigma_nu=0.02, relaxation_sigma=0.0)
    t = ONE_MONTH
    gen = np.random.default_rng(3)
    # Large nu spread relative to the mean => the clip at zero matters;
    # the unclipped lognormal moments would be visibly wrong here.
    draws = model.apply(np.ones(200_000), t, gen)
    m1, m2 = model.decay_moments(t)
    assert draws.mean() == pytest.approx(m1, rel=5e-3)
    assert (draws ** 2).mean() == pytest.approx(m2, rel=5e-3)
    unclipped_m1 = np.exp(-np.log(t) * model.nu
                          + 0.5 * (np.log(t) * model.sigma_nu) ** 2)
    assert abs(unclipped_m1 - draws.mean()) > 10 * abs(m1 - draws.mean())


def test_decay_moments_identity_at_t0_and_validation():
    model = RetentionModel(nu=0.05, sigma_nu=0.01, relaxation_sigma=0.005)
    assert model.decay_moments(model.t0) == (1.0, 1.0)
    assert model.mean_decay(model.t0) == 1.0
    assert model.relaxation_variance(model.t0) == 0.0
    with pytest.raises(ValueError, match="t0"):
        model.decay_moments(0.5)
    with pytest.raises(ValueError, match="t0"):
        model.relaxation_variance(0.5)


def test_compensation_stage_recovers_the_mean():
    """Drift then compensation is mean-unbiased, unlike drift alone."""
    model = RetentionModel(nu=0.05, sigma_nu=0.01, relaxation_sigma=0.0)
    stage = DriftCompensationStage(model)
    levels = np.full(100_000, 10.0)
    gen = np.random.default_rng(7)
    drifted = model.apply(levels, ONE_MONTH, gen)
    assert drifted.mean() < 6.0  # raw pcm loses ~half the conductance
    compensated = stage.apply(drifted, None, None, t=ONE_MONTH)
    assert compensated.mean() == pytest.approx(10.0, rel=2e-3)
    # The exponent spread survives: compensation is not a clean rewrite.
    assert compensated.std() > 0.5


def test_pcm_comp_stack_order_and_registry_roundtrip():
    tech = get_technology("pcm-comp")
    assert tech.drift_compensated
    stack = tech.build_stack()
    assert [s.name for s in stack.stages] == [
        "program-noise", "retention", "drift-compensation",
    ]
    clone = type(tech).from_dict(tech.to_dict())
    assert clone == tech
    assert not get_technology("pcm").drift_compensated


@pytest.fixture
def small_model(rng):
    return to_float64(mlp(rng.child("m"), (6, 10, 4), activation="relu"))


def test_compensation_is_bitwise_noop_at_t0(small_model):
    """Deploying at the write-verify reference time changes nothing."""
    accelerator = CimAccelerator(small_model, technology="pcm-comp")
    rng = RngStream(11).child("noop")
    accelerator.program(rng.child("program").generator)
    accelerator.write_verify_all(rng.child("verify").generator)

    accelerator.apply_all()
    plain = {
        name: weights.copy()
        for name, weights in accelerator.deployed_weights().items()
    }
    accelerator.apply_all(read_time=1.0, read_stream=rng)
    at_t0 = accelerator.deployed_weights()
    for name in plain:
        np.testing.assert_array_equal(at_t0[name], plain[name])


@pytest.mark.slow
def test_compensated_pcm_beats_uncompensated_at_one_month():
    """The Table-1 smoke model recovers under compensation at 30 days.

    Shared RNG root => both technologies program and verify the same
    draws; the only difference is the read path's global rescale, so a
    strict accuracy win at every NWC target is the regression contract.
    """
    from repro.experiments.config import SMOKE
    from repro.experiments.model_zoo import load_workload
    from repro.experiments.sweeps import run_method_sweep

    zoo = load_workload(SMOKE.workload("lenet-digits"))
    curves = {}
    for technology in ("pcm", "pcm-comp"):
        outcome = run_method_sweep(
            zoo, sigma=None, technology=technology, read_time=ONE_MONTH,
            nwc_targets=(0.0, 0.5, 1.0), mc_runs=2,
            rng=RngStream(13).child("comp"),
            eval_samples=160, sense_samples=128, methods=("swim",),
        )
        curves[technology] = outcome.curves["swim"].means()
    assert np.all(curves["pcm-comp"] > curves["pcm"] + 0.2), curves


def test_compensation_shrinks_the_variance_map(small_model):
    """Analytic view of the same story: E[dw^2] drops under compensation."""
    from repro.core import WeightSpace

    space = WeightSpace.from_model(small_model)
    raw = get_technology("pcm")
    comp = get_technology("pcm-comp")
    mapping = raw.mapping_config()
    var_raw = raw.build_stack().variance_map(
        mapping, read_time=ONE_MONTH, space=space, model=small_model
    )
    var_comp = comp.build_stack().variance_map(
        mapping, read_time=ONE_MONTH, space=space, model=small_model
    )
    assert var_comp.mean() < 0.5 * var_raw.mean()
    # The win is on the weights that matter: the rescale cancels the
    # level-proportional bias of large weights, while near-zero weights
    # (no signal to recover) see their noise amplified by the 1/E[D]
    # factor — compensation trades a large bias for a small variance.
    largest = np.argsort(var_raw)[-space.total_size // 4:]
    assert np.all(var_comp[largest] < var_raw[largest])
