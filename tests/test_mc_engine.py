"""Trial-batched Monte Carlo engine: seeded equivalence with the scalar path.

The batched engine must reproduce the scalar protocol's physics — same
per-trial programming draws (bitwise), same write-verify statistics
(mean cycles ~10, residual sigma ~0.03-0.05 full-scale at the paper's
operating point), same sweep results within Monte Carlo tolerance — while
stacking all trials on one leading axis.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cim import CimAccelerator, DeviceConfig, MappingConfig
from repro.cim.noise import ResidualModel, inject_code_noise
from repro.cim.write_verify import (
    WriteVerifyConfig,
    write_verify,
    write_verify_trials,
)
from repro.core import MonteCarloEngine, SwimConfig, WeightSpace
from repro.core.metrics import evaluate_accuracy, evaluate_accuracy_trials, monte_carlo
from repro.core.sensitivity import MagnitudeScorer
from repro.utils.rng import RngStream


@pytest.fixture
def device():
    return DeviceConfig(bits=4, sigma=0.1)


def _trial_stack(device, n_trials, n_devices, seed=0):
    gen = np.random.default_rng(seed)
    targets = gen.uniform(0, device.max_level, size=n_devices)
    initial = np.stack(
        [device.program(targets, np.random.default_rng(seed + 1 + i))
         for i in range(n_trials)]
    )
    return targets, initial


# --------------------------------------------------------- write-verify


def test_write_verify_trials_shapes_and_dtypes(device):
    targets, initial = _trial_stack(device, 5, 400)
    result = write_verify_trials(
        targets, initial, device, WriteVerifyConfig(),
        rng=np.random.default_rng(3),
    )
    assert result.levels.shape == (5, 400)
    assert result.levels.dtype == np.float64
    assert result.cycles.shape == (5, 400)
    assert result.cycles.dtype == np.int64
    assert result.converged.shape == (5, 400)
    assert result.converged.dtype == np.bool_


def test_write_verify_trials_batched_matches_scalar_statistics(device):
    """Paper operating point: both paths hit ~10 cycles, same residual sigma."""
    config = WriteVerifyConfig()
    targets, initial = _trial_stack(device, 8, 4000)
    scalar = write_verify_trials(
        targets, initial, device, config, batched=False,
        trial_rngs=[np.random.default_rng(50 + i) for i in range(8)],
    )
    batched = write_verify_trials(
        targets, initial, device, config, rng=np.random.default_rng(99)
    )
    assert scalar.mean_cycles == pytest.approx(10.0, abs=3.0)
    assert batched.mean_cycles == pytest.approx(scalar.mean_cycles, rel=0.05)
    sigma_scalar = (scalar.levels - targets).std() / device.max_level
    sigma_batched = (batched.levels - targets).std() / device.max_level
    assert 0.02 < sigma_scalar < 0.05  # paper: "deviation < 3%" band
    assert sigma_batched == pytest.approx(sigma_scalar, rel=0.1)
    # Pulse noise occasionally strands a device past max_pulses; the
    # overwhelming majority must converge on both paths.
    assert scalar.converged.mean() > 0.999
    assert batched.converged.mean() > 0.999


def test_write_verify_trials_scalar_mode_is_bitwise_per_trial(device):
    """Trial i of the scalar path == a standalone write_verify call."""
    config = WriteVerifyConfig()
    targets, initial = _trial_stack(device, 4, 300, seed=7)
    stacked = write_verify_trials(
        targets, initial, device, config, batched=False,
        trial_rngs=[np.random.default_rng(70 + i) for i in range(4)],
    )
    single = write_verify(
        targets, initial[2], device, config, np.random.default_rng(72)
    )
    np.testing.assert_array_equal(stacked.levels[2], single.levels)
    np.testing.assert_array_equal(stacked.cycles[2], single.cycles)


def test_write_verify_trials_validates_inputs(device):
    targets, initial = _trial_stack(device, 3, 50)
    with pytest.raises(ValueError, match="requires rng"):
        write_verify_trials(targets, initial, device, WriteVerifyConfig())
    with pytest.raises(ValueError, match="requires trial_rngs"):
        write_verify_trials(
            targets, initial, device, WriteVerifyConfig(), batched=False
        )
    with pytest.raises(ValueError, match="trial_rngs"):
        write_verify_trials(
            targets, initial, device, WriteVerifyConfig(), batched=False,
            trial_rngs=[np.random.default_rng(0)],
        )


# ------------------------------------------------------- noise batching


def test_inject_code_noise_trial_axis():
    config = MappingConfig(weight_bits=4, device=DeviceConfig(bits=4, sigma=0.1))
    codes = np.arange(12).reshape(3, 4)
    out = inject_code_noise(codes, config, np.random.default_rng(0), n_trials=6)
    assert out.shape == (6, 3, 4)
    # Trials are independent draws around the same codes.
    spread = out.std(axis=0)
    assert (spread > 0).all()
    noise_free = MappingConfig(
        weight_bits=4, device=DeviceConfig(bits=4, sigma=0.0)
    )
    silent = inject_code_noise(
        codes, noise_free, np.random.default_rng(0), n_trials=2
    )
    np.testing.assert_array_equal(silent[0], codes)
    np.testing.assert_array_equal(silent[1], codes)


def test_residual_model_trial_axis(device):
    model = ResidualModel.from_simulation(device, n_devices=2048)
    config = MappingConfig(weight_bits=4, device=device)
    codes = np.arange(6).reshape(2, 3)
    out = model.apply_to_codes(codes, config, np.random.default_rng(1), n_trials=4)
    assert out.shape == (4, 2, 3)
    assert (out.std(axis=0) > 0).all()


# ------------------------------------------------------- engine streams


def test_engine_substreams_are_independent_and_stable():
    engine = MonteCarloEngine(6, RngStream(11).child("mc-test"))
    a = engine.substream(0).generator.normal(size=4)
    b = engine.substream(1).generator.normal(size=4)
    assert np.abs(a - b).max() > 0
    # Re-derived stream sees the same draws (named, not sequential).
    again = engine.substream(0).generator.normal(size=4)
    np.testing.assert_array_equal(a, again)


def test_engine_run_matches_monte_carlo_harness():
    def run_fn(stream):
        return float(stream.normal())

    root = RngStream(5).child("mc-test")
    legacy = monte_carlo(run_fn, 8, root)
    engine = MonteCarloEngine(8, root)
    modern = engine.run(run_fn)
    np.testing.assert_array_equal(legacy.values, modern.values)
    assert legacy.converged == modern.converged


def test_engine_blocks_cover_all_trials():
    engine = MonteCarloEngine(10, RngStream(0).child("b"), trial_block=4)
    blocks = list(engine.blocks())
    assert [len(b) for b in blocks] == [4, 4, 2]
    np.testing.assert_array_equal(np.concatenate(blocks), np.arange(10))


def test_engine_process_pool_matches_scalar():
    import multiprocessing

    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("fork start method unavailable")

    def run_fn(stream):
        return float(stream.uniform())

    root = RngStream(9).child("pool")
    serial = MonteCarloEngine(6, root).run(run_fn)
    pooled = MonteCarloEngine(6, root, processes=2).run(run_fn)
    np.testing.assert_array_equal(serial.values, pooled.values)


# ----------------------------------------- accelerator + sweep pipeline


@pytest.fixture(scope="module")
def small_setup():
    from repro.data import synthetic_digits
    from repro.nn import SGD, TrainConfig, Trainer, cosine_schedule
    from repro.nn.models import lenet

    root = RngStream(seed=4242)
    data = synthetic_digits(n_train=400, n_test=200, rng=root.child("data"))
    model = lenet(root.child("model"), conv_channels=(4, 8),
                  fc_features=(32, 16), act_bits=4)
    optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9)
    trainer = Trainer(optimizer, schedule=cosine_schedule(0.05, 4),
                      rng=root.child("train"))
    trainer.fit(model, data.train_x, data.train_y,
                config=TrainConfig(epochs=4, batch_size=64))
    model.eval()
    mapping = MappingConfig(weight_bits=4, device=DeviceConfig(bits=4, sigma=0.1))
    accelerator = CimAccelerator(model, mapping_config=mapping)
    space = WeightSpace.from_model(model)
    order = MagnitudeScorer().ranking(model, space, None, None)
    return model, data, accelerator, space, order


def test_program_trials_bitwise_matches_scalar(small_setup):
    model, data, accelerator, space, order = small_setup
    root = RngStream(1).child("bitwise")
    streams = [root.child("mc", i) for i in range(3)]
    stacked = accelerator.program_trials(
        [s.child("program").generator for s in streams]
    )
    scalar = accelerator.program(streams[1].child("program").generator)
    for name in scalar:
        np.testing.assert_array_equal(stacked[name][:, 1], scalar[name])


def test_sweep_nwc_batched_vs_scalar(small_setup):
    model, data, accelerator, space, order = small_setup
    eval_x, eval_y = data.test_x, data.test_y
    targets = (0.0, 0.5, 1.0)

    def run(batched):
        engine = MonteCarloEngine(6, RngStream(21).child("sweep"),
                                  batched=batched)
        return engine.sweep_nwc(
            model, accelerator, order, space, eval_x, eval_y, targets
        )

    acc_b, nwc_b = run(True)
    acc_s, nwc_s = run(False)
    assert acc_b.shape == acc_s.shape == (6, 3)
    # Endpoints: no verification -> 0 cycles; everything -> all cycles.
    np.testing.assert_allclose(nwc_b[:, 0], 0.0)
    np.testing.assert_allclose(nwc_b[:, -1], 1.0)
    np.testing.assert_allclose(nwc_s[:, 0], 0.0)
    np.testing.assert_allclose(nwc_s[:, -1], 1.0)
    # Identical per-trial programming draws make achieved NWC agree
    # closely; accuracies agree in Monte Carlo mean.
    np.testing.assert_allclose(nwc_b[:, 1], nwc_s[:, 1], atol=0.03)
    np.testing.assert_allclose(acc_b.mean(axis=0), acc_s.mean(axis=0), atol=0.06)
    # Write-verify must not hurt on average: full verify >= no verify.
    assert acc_b[:, -1].mean() >= acc_b[:, 0].mean() - 0.02


def test_trial_cycle_accounting_consistent_with_nwc(small_setup):
    """Per-trial cycle totals are the NWC denominator apply_selection uses."""
    model, data, accelerator, space, order = small_setup
    root = RngStream(61).child("cycles")
    streams = [root.child("mc", i) for i in range(3)]
    accelerator.program_trials([s.child("program").generator for s in streams])
    accelerator.write_verify_trials(rng=root.child("pulse").generator)

    per_weight = accelerator.weight_cycles_trials()
    totals = accelerator.total_cycles_trials()
    assert totals.shape == (3,)
    assert (totals > 0).all()
    summed = sum(
        cycles.reshape(3, -1).sum(axis=1) for cycles in per_weight.values()
    )
    np.testing.assert_array_equal(summed, totals)
    # Selecting everything spends exactly the denominator: NWC == 1.
    full = space.masks_from_indices(order)
    np.testing.assert_allclose(accelerator.apply_selection_trials(full), 1.0)
    accelerator.clear()


def test_apply_selection_trials_subset_and_per_trial_masks(small_setup):
    model, data, accelerator, space, order = small_setup
    root = RngStream(31).child("subset")
    streams = [root.child("mc", i) for i in range(4)]
    accelerator.program_trials([s.child("program").generator for s in streams])
    accelerator.write_verify_trials(rng=root.child("pulse").generator)

    count = space.total_size // 2
    shared = space.masks_from_indices(order[:count])
    nwc_all = accelerator.apply_selection_trials(shared)
    assert nwc_all.shape == (4,)
    nwc_subset = accelerator.apply_selection_trials(
        shared, trial_indices=np.array([1, 3])
    )
    np.testing.assert_allclose(nwc_subset, nwc_all[[1, 3]])

    per_trial = space.masks_from_indices_trials(
        [order[:count], order[:0], order[:count], order[: space.total_size]]
    )
    nwc_mixed = accelerator.apply_selection_trials(per_trial)
    assert nwc_mixed[1] == 0.0
    assert nwc_mixed[3] == pytest.approx(1.0)
    assert 0.0 < nwc_mixed[0] < 1.0
    accelerator.clear()


def test_evaluate_accuracy_trials_matches_scalar_with_shared_weights(small_setup):
    model, data, accelerator, space, order = small_setup
    accelerator.clear()
    x, y = data.test_x[:120], data.test_y[:120]
    scalar = evaluate_accuracy(model, x, y)
    per_trial = evaluate_accuracy_trials(model, x, y, n_trials=3)
    np.testing.assert_allclose(per_trial, scalar)


def test_engine_selective_write_verify_batched_vs_scalar(small_setup):
    model, data, accelerator, space, order = small_setup
    from repro.core.sensitivity import MagnitudeScorer

    eval_x, eval_y = data.test_x[:160], data.test_y[:160]
    baseline = evaluate_accuracy(model, eval_x, eval_y)
    config = SwimConfig(delta_a=0.02, granularity=0.25)

    def run(batched):
        engine = MonteCarloEngine(3, RngStream(77).child("alg1"),
                                  batched=batched)
        return engine.selective_write_verify(
            model, accelerator, MagnitudeScorer(), eval_x, eval_y,
            baseline, config=config,
        )

    batched = run(True)
    scalar = run(False)
    assert len(batched) == len(scalar) == 3
    for result in batched + scalar:
        assert 0.0 <= result.achieved_nwc <= 1.0
        assert 0.0 <= result.selected_fraction <= 1.0
        assert len(result.accuracy_history) == len(result.nwc_history)
        if result.met_target:
            assert baseline - result.achieved_accuracy <= config.delta_a + 1e-12
    mean_b = np.mean([r.achieved_accuracy for r in batched])
    mean_s = np.mean([r.achieved_accuracy for r in scalar])
    assert mean_b == pytest.approx(mean_s, abs=0.08)


# -------------------------------------------------- perturbation engine


def test_perturbation_evaluator_exact_vs_bruteforce(small_setup):
    from repro.core.perturbation import PerturbationEvaluator

    model, data, accelerator, space, order = small_setup
    accelerator.clear()
    x = data.test_x[:64]
    gen = np.random.default_rng(3)
    evaluator = PerturbationEvaluator(model, x, max_fold_samples=256)

    for module in list(model):
        weight = getattr(module, "weight", None)
        if weight is None:
            continue
        size = weight.data.size
        inner = gen.integers(0, size, size=5)
        signed = gen.normal(0.0, 0.05, size=5)
        fast = evaluator.evaluate(module, inner, signed)
        for t in range(5):
            perturbed = module.weight.data.copy()
            perturbed.reshape(-1)[inner[t]] += signed[t]
            module.set_weight_override(perturbed)
            reference = model(x)
            module.clear_weight_override()
            # The model computes in float32 here, so incremental vs full
            # recomputation differ only by reordered float32 rounding.
            np.testing.assert_allclose(
                fast[t], reference, rtol=1e-4, atol=1e-5,
                err_msg=f"mismatch for {type(module).__name__} trial {t}",
            )


def test_perturbation_evaluator_fallback_matches(small_setup):
    """The override-tile fallback agrees with the structured paths."""
    from repro.core.perturbation import PerturbationEvaluator

    model, data, accelerator, space, order = small_setup
    accelerator.clear()
    x = data.test_x[:48]
    conv = next(m for m in model if getattr(m, "weight", None) is not None)
    inner = np.array([0, 3, 7])
    signed = np.array([0.05, -0.02, 0.08])

    evaluator = PerturbationEvaluator(model, x, max_fold_samples=128)
    fast = evaluator.evaluate(conv, inner, signed)
    fallback = evaluator._evaluate_override(conv, inner, signed)
    np.testing.assert_allclose(fast, fallback, rtol=1e-4, atol=1e-5)
