"""WeightSpace indexing, ranking rules, and granularity grouping."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.selection import WeightSpace, cumulative_groups, rank_descending
from repro.nn.models import lenet, mlp


def test_weight_space_from_model_covers_weights(rng):
    model = lenet(rng.child("m"))
    space = WeightSpace.from_model(model)
    params = dict(model.named_parameters())
    want = sum(params[name].size for name in space.names)
    assert space.total_size == want
    assert all(name.endswith(".weight") for name in space.names)


def test_flatten_unflatten_roundtrip(rng):
    model = mlp(rng.child("m"), (6, 8, 4))
    space = WeightSpace.from_model(model)
    flat = rng.child("v").normal(size=space.total_size)
    tensors = space.unflatten(flat)
    np.testing.assert_array_equal(space.flatten(tensors), flat)


def test_flatten_validates_shapes(rng):
    model = mlp(rng.child("m"), (6, 8, 4))
    space = WeightSpace.from_model(model)
    bad = {name: np.zeros((1,)) for name in space.names}
    with pytest.raises(ValueError, match="shape"):
        space.flatten(bad)


def test_unflatten_validates_length(rng):
    model = mlp(rng.child("m"), (6, 8, 4))
    space = WeightSpace.from_model(model)
    with pytest.raises(ValueError, match="shape"):
        space.unflatten(np.zeros(space.total_size + 1))


def test_masks_from_indices_selects_exactly(rng):
    model = mlp(rng.child("m"), (6, 8, 4))
    space = WeightSpace.from_model(model)
    indices = np.array([0, 5, space.total_size - 1])
    masks = space.masks_from_indices(indices)
    flat = space.flatten({k: v.astype(np.float64) for k, v in masks.items()})
    assert flat.sum() == 3
    assert flat[0] == 1 and flat[5] == 1 and flat[-1] == 1


def test_gather_from_model_matches_parameters(rng):
    model = mlp(rng.child("m"), (6, 8, 4))
    space = WeightSpace.from_model(model)
    flat = space.gather_from_model(model, "data")
    params = dict(model.named_parameters())
    want = np.concatenate([params[n].data.reshape(-1) for n in space.names])
    np.testing.assert_array_equal(flat, want)


def test_rank_descending_orders_scores():
    order = rank_descending(np.array([0.1, 3.0, 2.0]))
    np.testing.assert_array_equal(order, [1, 2, 0])


def test_rank_descending_tie_break_by_magnitude():
    """Paper Sec. 3.2: equal curvature -> larger magnitude first."""
    scores = np.array([1.0, 1.0, 1.0, 2.0])
    magnitude = np.array([0.5, 2.0, 1.0, 0.1])
    order = rank_descending(scores, tie_break=magnitude)
    np.testing.assert_array_equal(order, [3, 1, 2, 0])


def test_rank_descending_tie_break_shape_checked():
    with pytest.raises(ValueError, match="tie_break"):
        rank_descending(np.zeros(3), tie_break=np.zeros(4))


def test_cumulative_groups_five_percent():
    order = np.arange(100)
    groups = list(cumulative_groups(order, 0.05))
    assert len(groups) == 20
    assert groups[0].size == 5
    assert groups[-1].size == 100
    np.testing.assert_array_equal(groups[2], np.arange(15))


def test_cumulative_groups_final_partial():
    order = np.arange(13)
    groups = list(cumulative_groups(order, 0.4))
    sizes = [g.size for g in groups]
    assert sizes == [5, 10, 13]


def test_cumulative_groups_validates_granularity():
    with pytest.raises(ValueError, match="granularity"):
        list(cumulative_groups(np.arange(5), 0.0))


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=300),
    granularity=st.floats(min_value=0.01, max_value=1.0),
    seed=st.integers(min_value=0, max_value=10000),
)
def test_cumulative_groups_properties(n, granularity, seed):
    """Groups are prefixes, strictly growing, and end with everything."""
    order = np.random.default_rng(seed).permutation(n)
    groups = list(cumulative_groups(order, granularity))
    assert groups[-1].size == n
    previous = 0
    for group in groups:
        assert group.size > previous
        np.testing.assert_array_equal(group, order[: group.size])
        previous = group.size


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10000))
def test_rank_descending_is_permutation(seed):
    gen = np.random.default_rng(seed)
    scores = gen.normal(size=50)
    ties = gen.normal(size=50)
    order = rank_descending(scores, tie_break=np.abs(ties))
    assert sorted(order) == list(range(50))
    ranked = scores[order]
    assert np.all(np.diff(ranked) <= 1e-12)
