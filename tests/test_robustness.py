"""Fault tolerance: supervised workers, self-healing cache, checkpoint/resume.

Pins the robustness subsystem's contracts: corrupted cache artifacts are
quarantined and recomputed instead of crashing the run, crashed and hung
workers are retried (then degraded to the serial parent) without losing
their siblings' results, transiently-failing producers are retried with
counted attempts, completed cells checkpoint and resume byte-identically,
and the CLI maps the exception taxonomy to single-line messages with
distinct exit codes.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import subprocess
import sys
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.plan import (
    PlanArtifactCache,
    PlanEngine,
    PlanRequest,
    ScenarioCell,
    ScenarioOrchestrator,
    resolve_jobs,
)
from repro.robustness import (
    CacheWriteError,
    CellExecutionError,
    FatalError,
    ReproError,
    RetryableError,
    ScenarioConfigError,
    TransientFaultError,
    WorkerCrashError,
    decode_outcome,
    encode_outcome,
    has_fork,
    is_retryable,
    parse_faults,
    run_with_retry,
    supervised_map,
)
from repro.robustness.faults import FaultSchedule
from repro.utils.rng import RngStream

needs_fork = pytest.mark.skipif(
    not has_fork(), reason="supervised pool needs the fork start method"
)


# --------------------------------------------------------------- taxonomy


class TestTaxonomy:
    def test_retryable_vs_fatal_split(self):
        assert is_retryable(WorkerCrashError("boom"))
        assert is_retryable(TransientFaultError("blip"))
        assert not is_retryable(CellExecutionError("bad"))
        assert not is_retryable(ValueError("plain"))
        assert issubclass(RetryableError, ReproError)
        assert issubclass(FatalError, ReproError)

    def test_exit_codes_are_distinct_sysexits(self):
        assert ScenarioConfigError("x").exit_code == 64
        assert CacheWriteError("x").exit_code == 74
        assert RetryableError("x").exit_code == 75
        assert FatalError("x").exit_code == 70

    def test_back_compat_base_classes(self):
        """Callers that caught ValueError/OSError keep working."""
        assert isinstance(ScenarioConfigError("x"), ValueError)
        assert isinstance(CacheWriteError("x"), OSError)


# ----------------------------------------------------------- fault grammar


class TestFaultSchedule:
    def test_parse_full_grammar(self):
        entries = parse_faults(
            "crash:cell@0; hang:cell@1=60; raise:producer@variance*2; "
            "corrupt:artifact"
        )
        assert [e.kind for e in entries] == ["crash", "hang", "raise", "corrupt"]
        assert entries[0].matches("cell", 0)
        assert not entries[0].matches("cell", 1)
        assert entries[1].param == 60.0
        assert entries[2].times == 2
        assert entries[3].key is None and entries[3].matches("artifact", "order")

    @pytest.mark.parametrize("spec", [
        "bogus", "explode:cell", "crash:universe", "crash:cell*zero",
        "crash:cell*0",
    ])
    def test_malformed_spec_is_a_config_error(self, spec):
        with pytest.raises(ScenarioConfigError):
            parse_faults(spec)

    def test_ledger_gives_exactly_n_firings(self, tmp_path):
        schedule = FaultSchedule(
            parse_faults("raise:producer@curvature*2"), str(tmp_path / "ledger")
        )
        fired = 0
        for _ in range(5):
            try:
                schedule.fire("producer", "curvature")
            except TransientFaultError:
                fired += 1
        assert fired == 2
        assert schedule.fired() == 2
        # A second schedule over the same ledger sees the spent slots.
        again = FaultSchedule(
            parse_faults("raise:producer@curvature*2"), str(tmp_path / "ledger")
        )
        again.fire("producer", "curvature")  # must not raise


# ------------------------------------------------------- self-healing cache


class TestSelfHealingCache:
    def _cache(self, tmp_path, **kwargs):
        return PlanArtifactCache(root=str(tmp_path), memory=False, **kwargs)

    def test_roundtrip_and_checksum(self, tmp_path):
        cache = self._cache(tmp_path)
        config = {"x": 1}
        cache.put("order", config, {"order": np.arange(5, dtype=np.int64)})
        arrays = cache.get("order", config)
        assert np.array_equal(arrays["order"], np.arange(5))
        assert "__checksum__" not in arrays

    def test_truncated_artifact_quarantined_and_recomputed(self, tmp_path):
        cache = self._cache(tmp_path)
        config = {"x": 2}
        cache.put("order", config, {"order": np.arange(64)})
        path = cache.path_for("order", config)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size // 2)

        with pytest.warns(RuntimeWarning, match="corrupt plan cache"):
            assert cache.get("order", config) is None
        assert os.path.exists(path + ".corrupt")
        assert not os.path.exists(path)
        assert cache.stats()["quarantined"] == 1

        produced = []

        def producer():
            produced.append(1)
            return {"order": np.arange(64)}

        arrays = cache.get_or_create("order", config, producer)
        assert produced == [1]
        assert np.array_equal(arrays["order"], np.arange(64))
        assert cache.get("order", config) is not None  # healed on disk

    def test_checksum_mismatch_quarantined(self, tmp_path):
        """A well-formed npz whose content was tampered with is caught."""
        cache = self._cache(tmp_path)
        config = {"x": 3}
        cache.put("order", config, {"order": np.arange(16)})
        path = cache.path_for("order", config)
        with np.load(path) as handle:
            arrays = {name: handle[name] for name in handle.files}
        arrays["order"] = arrays["order"] + 1  # tamper, keep checksum
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.warns(RuntimeWarning, match="checksum mismatch"):
            assert cache.get("order", config) is None
        assert cache.stats()["quarantined"] == 1

    def test_pre_checksum_artifact_reads_as_miss(self, tmp_path):
        """A v1-era entry (no embedded checksum) cannot be trusted."""
        cache = self._cache(tmp_path)
        config = {"x": 4}
        path = cache.path_for("order", config)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as handle:
            np.savez(handle, order=np.arange(8))
        with pytest.warns(RuntimeWarning, match="no embedded checksum"):
            assert cache.get("order", config) is None

    def test_stale_tmp_files_swept_at_init(self, tmp_path):
        cache = self._cache(tmp_path)
        os.makedirs(cache.root, exist_ok=True)
        stale = os.path.join(cache.root, "order-abc.npz.tmp.12345")
        fresh = os.path.join(cache.root, "order-def.npz.tmp.67890")
        for path in (stale, fresh):
            with open(path, "wb") as handle:
                handle.write(b"partial")
        old = time.time() - 7200
        os.utime(stale, (old, old))

        self._cache(tmp_path)  # init sweeps
        assert not os.path.exists(stale)
        assert os.path.exists(fresh)  # young: may belong to a live writer

    def test_failed_put_leaks_no_tmp_and_raises_typed(self, tmp_path,
                                                      monkeypatch):
        cache = self._cache(tmp_path)
        monkeypatch.setattr(
            np, "savez",
            lambda *a, **k: (_ for _ in ()).throw(OSError("disk full")),
        )
        with pytest.raises(CacheWriteError, match="disk full"):
            cache.put("order", {"x": 5}, {"order": np.arange(4)})
        leftovers = [
            name for name in os.listdir(cache.root) if ".tmp." in name
        ]
        assert leftovers == []

    def test_transient_producer_retried_and_counted(self, tmp_path):
        cache = self._cache(tmp_path)
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransientFaultError("blip")
            return {"order": np.arange(3)}

        os.environ.setdefault("REPRO_RETRY_BACKOFF", "0")
        try:
            arrays = cache.get_or_create("order", {"x": 6}, flaky)
        finally:
            os.environ.pop("REPRO_RETRY_BACKOFF", None)
        assert len(calls) == 3
        assert np.array_equal(arrays["order"], np.arange(3))
        assert cache.stats()["producer_retries"] == 2

    def test_fatal_producer_error_propagates(self, tmp_path):
        cache = self._cache(tmp_path)
        with pytest.raises(ValueError, match="no retry"):
            cache.get_or_create(
                "order", {"x": 7},
                lambda: (_ for _ in ()).throw(ValueError("no retry")),
            )


# ------------------------------------------------------------ retry policy


class TestRunWithRetry:
    def test_retries_only_retryable(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 2:
                raise TransientFaultError("blip")
            return "done"

        failures = []
        value, attempts = run_with_retry(
            flaky, retries=2, backoff=0.0, failures=failures
        )
        assert (value, attempts) == ("done", 2)
        assert failures == ["TransientFaultError: blip"]

    def test_fatal_not_retried(self):
        calls = []

        def fatal():
            calls.append(1)
            raise ValueError("nope")

        with pytest.raises(ValueError):
            run_with_retry(fatal, retries=3, backoff=0.0)
        assert len(calls) == 1

    def test_budget_exhaustion_raises_last_error(self):
        with pytest.raises(TransientFaultError):
            run_with_retry(
                lambda: (_ for _ in ()).throw(TransientFaultError("blip")),
                retries=1, backoff=0.0,
            )

    def test_bad_env_knobs_are_config_errors(self, monkeypatch):
        monkeypatch.setenv("REPRO_CELL_RETRIES", "many")
        with pytest.raises(ScenarioConfigError, match="REPRO_CELL_RETRIES"):
            run_with_retry(lambda: 1)


# -------------------------------------------------------- supervised pool


def _crash_once(tmp_path):
    """A task fn whose first execution per item exits the worker hard."""
    base = str(tmp_path)

    def fn(item):
        marker = os.path.join(base, f"crashed-{item}")
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return item * 10
        os.close(fd)
        os._exit(1)

    return fn


@needs_fork
class TestSupervisedMap:
    def test_happy_path_keeps_order_and_status(self):
        result = supervised_map(
            lambda i: i * i, range(4), workers=2, backoff=0.0
        )
        assert result.values == {i: i * i for i in range(4)}
        assert all(r.status == "ok" for r in result.reports.values())
        assert result.failed == []

    def test_worker_crash_is_retried(self, tmp_path):
        result = supervised_map(
            _crash_once(tmp_path), [0, 1], workers=2, retries=2, backoff=0.0
        )
        assert result.values == {0: 0, 1: 10}
        for report in result.reports.values():
            assert report.status == "recovered"
            assert report.attempts == 2
            assert any("WorkerCrashError" in f for f in report.failures)

    def test_hung_worker_killed_and_retried(self, tmp_path):
        base = str(tmp_path)

        def hang_once(item):
            marker = os.path.join(base, f"hung-{item}")
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                return "alive"
            os.close(fd)
            time.sleep(120)

        start = time.monotonic()
        result = supervised_map(
            hang_once, ["a"], workers=1, timeout=1.0, retries=1, backoff=0.0
        )
        assert time.monotonic() - start < 30
        assert result.values == {"a": "alive"}
        report = result.reports["a"]
        assert report.status == "recovered"
        assert any("CellTimeoutError" in f for f in report.failures)

    def test_fatal_error_fails_fast_without_killing_siblings(self):
        def fn(item):
            if item == 1:
                raise ValueError("cell is broken")
            return item

        result = supervised_map(fn, [0, 1, 2], workers=2, backoff=0.0)
        assert result.values == {0: 0, 2: 2}
        assert result.failed == [1]
        assert result.reports[1].attempts == 1  # fatal: no retry
        assert "ValueError" in result.reports[1].error

    def test_exhausted_retries_degrade_to_serial_parent(self):
        def crash_in_child(item):
            if multiprocessing.parent_process() is not None:
                os._exit(1)
            return item + 100

        result = supervised_map(
            crash_in_child, [7], workers=1, retries=1, backoff=0.0
        )
        assert result.values == {7: 107}
        assert result.reports[7].status == "degraded"
        assert result.reports[7].attempts == 3  # 2 worker tries + parent

    def test_on_result_fires_in_parent_per_success(self):
        seen = []
        supervised_map(
            lambda i: i, range(3), workers=2, backoff=0.0,
            on_result=lambda item, value: seen.append((item, value, os.getpid())),
        )
        assert sorted(v[:2] for v in seen) == [(0, 0), (1, 1), (2, 2)]
        assert all(pid == os.getpid() for *_, pid in seen)


class TestForklessDegrade:
    def test_supervised_map_runs_serially_without_fork(self, monkeypatch):
        """A platform without the fork start method gets the same map —
        run serially in the parent, with one warning and the same retry
        policy — instead of a crash in get_context("fork")."""
        import repro.robustness.supervisor as sup

        monkeypatch.setattr(sup, "has_fork", lambda: False)
        calls = []

        def flaky(item):
            calls.append(item)
            if item == 1 and calls.count(1) < 2:
                raise TransientFaultError("blip")
            return item * 10

        seen = []
        with pytest.warns(RuntimeWarning, match="serially in the parent"):
            result = sup.supervised_map(
                flaky, [0, 1, 2], workers=4, retries=2, backoff=0.0,
                on_result=lambda item, value: seen.append(item),
            )
        assert result.values == {0: 0, 1: 10, 2: 20}
        assert result.reports[0].status == "ok"
        assert result.reports[1].status == "recovered"
        assert result.reports[1].attempts == 2
        assert seen == [0, 1, 2]

    def test_fatal_task_still_fails_without_fork(self, monkeypatch):
        import repro.robustness.supervisor as sup

        monkeypatch.setattr(sup, "has_fork", lambda: False)
        with pytest.warns(RuntimeWarning, match="serially in the parent"):
            result = sup.supervised_map(
                lambda i: (_ for _ in ()).throw(ValueError("broken")),
                [0], workers=2, backoff=0.0,
            )
        assert result.failed == [0]
        assert "ValueError" in result.reports[0].error


# ----------------------------------------------------- checkpoint encoding


class TestCheckpointRoundTrip:
    def test_outcome_round_trips_exactly(self):
        from repro.experiments.sweeps import MethodCurve, SweepOutcome

        rng = np.random.default_rng(5)
        outcome = SweepOutcome(
            workload="lenet-test",
            sigma=0.1,
            clean_accuracy=0.9123456789123456,
            nwc_targets=(0.0, 0.5, 1.0),
            technology="fefet",
            read_time=3.6e3,
            wear={"mean_pulses_per_device": 1.25, "deployments_to_failure": 3e4},
        )
        for method in ("swim", "magnitude"):  # order matters
            outcome.curves[method] = MethodCurve(
                method=method,
                nwc_targets=outcome.nwc_targets,
                accuracy_runs=rng.random((4, 3)),
                achieved_nwc=rng.random((4, 3)),
            )

        restored = decode_outcome(encode_outcome(outcome))
        assert restored.workload == outcome.workload
        assert restored.sigma == outcome.sigma
        assert restored.clean_accuracy == outcome.clean_accuracy  # exact
        assert restored.nwc_targets == outcome.nwc_targets
        assert restored.technology == outcome.technology
        assert restored.read_time == outcome.read_time
        assert restored.wear == outcome.wear
        assert list(restored.curves) == ["swim", "magnitude"]
        for method, curve in outcome.curves.items():
            back = restored.curves[method]
            assert np.array_equal(back.accuracy_runs, curve.accuracy_runs)
            assert np.array_equal(back.achieved_nwc, curve.achieved_nwc)

    def test_numpy_scalars_in_meta_are_sanitized(self):
        from repro.experiments.sweeps import MethodCurve, SweepOutcome

        outcome = SweepOutcome(
            workload="w",
            sigma=np.float64(0.2),
            clean_accuracy=np.float64(0.5),
            nwc_targets=(np.float64(0.0),),
            wear={"pulses": np.int64(7)},
        )
        outcome.curves["swim"] = MethodCurve(
            method="swim", nwc_targets=(0.0,),
            accuracy_runs=np.zeros((1, 1)), achieved_nwc=np.zeros((1, 1)),
        )
        restored = decode_outcome(encode_outcome(outcome))
        assert restored.sigma == 0.2
        assert restored.wear == {"pulses": 7}


# ----------------------------------------------- orchestrator end-to-end


@pytest.fixture()
def mini_zoo(trained_lenet):
    model, data, accuracy = trained_lenet
    return SimpleNamespace(
        model=model,
        data=data,
        clean_accuracy=accuracy,
        spec=SimpleNamespace(key="lenet-test", weight_bits=4),
    )


def _grid(n=2, methods=("magnitude",)):
    """A tiny n-cell scenario grid (magnitude only: no curvature pass)."""
    root = RngStream(91).child("robustness")
    return [
        ScenarioCell(
            key=f"cell{i}",
            request=PlanRequest(
                methods=methods, nwc_targets=(0.0, 0.5),
                sigma=0.1 + 0.05 * i,
            ),
            rng=root.child("cell", i),
            mc_runs=2,
        )
        for i in range(n)
    ]


def _orchestrator(mini_zoo, cache):
    return ScenarioOrchestrator(
        mini_zoo, eval_samples=32, sense_samples=64, cache=cache
    )


def _assert_outcomes_equal(a, b):
    assert set(a) == set(b)
    for key in a:
        assert list(a[key].curves) == list(b[key].curves)
        for method in a[key].curves:
            assert np.array_equal(
                a[key].curves[method].accuracy_runs,
                b[key].curves[method].accuracy_runs,
            )
            assert np.array_equal(
                a[key].curves[method].achieved_nwc,
                b[key].curves[method].achieved_nwc,
            )


class TestOrchestratorRobustness:
    def test_checkpoint_then_resume_skips_cells(self, mini_zoo, tmp_path):
        cache = PlanArtifactCache(root=str(tmp_path), memory=False)
        first = _orchestrator(mini_zoo, cache).run(_grid(), scenario="t")

        # A *new* orchestrator + cache (new process stand-in) resumes.
        cache2 = PlanArtifactCache(root=str(tmp_path), memory=False)
        orchestrator = _orchestrator(mini_zoo, cache2)
        hits_before = cache2.stats()["disk"]
        resumed = orchestrator.run(_grid(), resume=True, scenario="t")
        assert [c.status for c in orchestrator.report.cells] == [
            "resumed", "resumed"
        ]
        assert cache2.stats()["disk"] >= hits_before + 2  # checkpoint hits
        _assert_outcomes_equal(first, resumed)

    def test_without_resume_warm_tiles_serve_cells(self, mini_zoo, tmp_path):
        """Even without --resume, a warm rerun is passless: every tile
        comes from the eval cache and the cells merge as ``cached``."""
        cache = PlanArtifactCache(root=str(tmp_path), memory=False)
        first = _orchestrator(mini_zoo, cache).run(_grid(), scenario="t")
        orchestrator = _orchestrator(
            mini_zoo, PlanArtifactCache(root=str(tmp_path), memory=False)
        )
        second = orchestrator.run(_grid(), scenario="t")
        report = orchestrator.report
        assert [c.status for c in report.cells] == ["cached", "cached"]
        assert report.tiles_cached == report.tiles_total > 0
        assert report.tiles_computed == 0
        _assert_outcomes_equal(first, second)

    def test_failed_cell_reported_not_raised(self, mini_zoo, tmp_path,
                                             monkeypatch):
        import repro.plan.orchestrator as orch_mod

        cache = PlanArtifactCache(root=str(tmp_path), memory=False)
        orchestrator = _orchestrator(mini_zoo, cache)
        import repro.experiments.sweeps as sweeps

        real = sweeps.run_method_sweep

        def sabotage(zoo, **kwargs):
            if kwargs.get("sigma") == 0.1:
                raise RuntimeError("cell exploded")
            return real(zoo, **kwargs)

        monkeypatch.setattr(sweeps, "run_method_sweep", sabotage)
        outcomes = orchestrator.run(_grid(), scenario="t")
        assert set(outcomes) == {"cell1"}  # survivor present
        report = orchestrator.report
        assert [c.status for c in report.cells] == ["failed", "ok"]
        assert report.failed[0].key == "cell0"
        assert "RuntimeError" in report.failed[0].error
        assert report.eventful

    @needs_fork
    def test_faulted_parallel_grid_matches_serial(self, mini_zoo, tmp_path,
                                                  monkeypatch):
        """Crash + hang + transient producer faults; results still exact."""
        serial = _orchestrator(
            mini_zoo, PlanArtifactCache(disk=False)
        ).run(_grid(3), scenario="t")

        monkeypatch.setenv(
            "REPRO_FAULTS", "crash:cell@0;hang:cell@1=120"
        )
        monkeypatch.setenv("REPRO_FAULTS_DIR", str(tmp_path / "ledger"))
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
        orchestrator = _orchestrator(
            mini_zoo, PlanArtifactCache(root=str(tmp_path), memory=False)
        )
        faulted = orchestrator.run(
            _grid(3), jobs=2, timeout=15.0, scenario="t"
        )
        statuses = {
            c.key: c.status for c in orchestrator.report.cells
        }
        assert statuses == {
            "cell0": "recovered", "cell1": "recovered", "cell2": "ok"
        }
        _assert_outcomes_equal(serial, faulted)

    def test_transient_producer_fault_retried_during_planning(
            self, mini_zoo, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "raise:producer@order*2")
        monkeypatch.setenv("REPRO_FAULTS_DIR", str(tmp_path / "ledger"))
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
        cache = PlanArtifactCache(disk=False)
        engine = PlanEngine(
            mini_zoo.model,
            mini_zoo.data.train_x[:64],
            mini_zoo.data.train_y[:64],
            workload="lenet-test",
            cache=cache,
        )
        plan = engine.plan(PlanRequest(methods=("magnitude",), sigma=0.1))
        assert "magnitude" in plan.orders
        assert cache.stats()["producer_retries"] == 2

    def test_jobs_processes_combination_schedules(self, mini_zoo):
        """Regression: this exact call used to raise ScenarioConfigError
        ("one parallelism axis") — the rectangle folds both knobs into
        one pool and completes the grid."""
        orchestrator = _orchestrator(mini_zoo, PlanArtifactCache(disk=False))
        outcomes = orchestrator.run(_grid(), jobs=2, processes=2)
        assert set(outcomes) == {"cell0", "cell1"}
        assert not orchestrator.report.failed

    def test_resolve_jobs_rejects_garbage_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "lots")
        with pytest.raises(ScenarioConfigError, match="REPRO_JOBS"):
            resolve_jobs()


# ------------------------------------------------- incremental eval cache


def _seeded_grid(seed, sigmas=(0.1, 0.15), mc_runs=2):
    root = RngStream(seed).child("evalcache")
    return [
        ScenarioCell(
            key=f"cell{i}",
            request=PlanRequest(
                methods=("magnitude",), nwc_targets=(0.0, 0.5), sigma=sigma,
            ),
            rng=root.child("cell", i),
            mc_runs=mc_runs,
        )
        for i, sigma in enumerate(sigmas)
    ]


class TestEvalTileCache:
    def test_changed_cell_recomputes_only_its_tiles(self, mini_zoo,
                                                    tmp_path):
        """A one-cell config change (here: its trial seed) invalidates
        exactly that cell's tiles; the untouched cell stays cached."""
        cache = PlanArtifactCache(root=str(tmp_path), memory=False)
        _orchestrator(mini_zoo, cache).run(_seeded_grid(91), scenario="t")

        reseeded = _seeded_grid(91)
        reseeded[0].rng = RngStream(4242).child("other")
        orchestrator = _orchestrator(
            mini_zoo, PlanArtifactCache(root=str(tmp_path), memory=False)
        )
        orchestrator.run(reseeded, scenario="t")
        report = orchestrator.report
        statuses = {c.key: c.status for c in report.cells}
        assert statuses == {"cell0": "ok", "cell1": "cached"}
        assert report.tiles_total == 2
        assert report.tiles_cached == 1
        assert report.tiles_computed == 1

    def test_eval_set_change_invalidates_every_tile(self, mini_zoo,
                                                    tmp_path):
        cache = PlanArtifactCache(root=str(tmp_path), memory=False)
        _orchestrator(mini_zoo, cache).run(_seeded_grid(91), scenario="t")

        bumped_data = SimpleNamespace(
            train_x=mini_zoo.data.train_x,
            train_y=mini_zoo.data.train_y,
            test_x=mini_zoo.data.test_x + 1e-6,
            test_y=mini_zoo.data.test_y,
        )
        bumped = SimpleNamespace(
            model=mini_zoo.model, data=bumped_data,
            clean_accuracy=mini_zoo.clean_accuracy, spec=mini_zoo.spec,
        )
        orchestrator = _orchestrator(
            bumped, PlanArtifactCache(root=str(tmp_path), memory=False)
        )
        orchestrator.run(_seeded_grid(91), scenario="t")
        report = orchestrator.report
        assert report.tiles_cached == 0
        assert report.tiles_computed == report.tiles_total == 2

    def test_quarantined_eval_tile_recomputes(self, mini_zoo, tmp_path):
        """A truncated eval artifact reads as a miss (quarantined by the
        self-healing cache) and only that tile recomputes."""
        cache = PlanArtifactCache(root=str(tmp_path), memory=False)
        first = _orchestrator(mini_zoo, cache).run(
            _seeded_grid(91), scenario="t"
        )
        tiles = sorted(
            name for name in os.listdir(cache.root)
            if name.startswith("eval-")
        )
        assert len(tiles) == 2
        victim = os.path.join(cache.root, tiles[0])
        with open(victim, "r+b") as handle:
            handle.truncate(os.path.getsize(victim) // 2)

        orchestrator = _orchestrator(
            mini_zoo, PlanArtifactCache(root=str(tmp_path), memory=False)
        )
        with pytest.warns(RuntimeWarning, match="corrupt plan cache"):
            healed = orchestrator.run(_seeded_grid(91), scenario="t")
        report = orchestrator.report
        assert report.cache["quarantined"] == 1
        assert report.tiles_cached == 1
        assert report.tiles_computed == 1
        _assert_outcomes_equal(first, healed)
        # The recomputed artifact healed on disk: a third run is passless.
        third = _orchestrator(
            mini_zoo, PlanArtifactCache(root=str(tmp_path), memory=False)
        )
        third.run(_seeded_grid(91), scenario="t")
        assert third.report.tiles_computed == 0


class TestTileMerge:
    def test_merged_windows_bitwise_equal_full_sweep(self, mini_zoo):
        """Adjacent trial_range windows vstack back into the unsplit
        sweep's exact bits — rows, NWC means, and wear statistics."""
        from repro.experiments.sweeps import run_method_sweep
        from repro.robustness import merge_outcomes

        kwargs = dict(
            sigma=None, technology="fefet", nwc_targets=(0.0, 0.5),
            mc_runs=4, eval_samples=32, sense_samples=64,
            methods=("magnitude",),
        )
        rng = RngStream(7).child("merge")
        full = run_method_sweep(mini_zoo, rng=rng, **kwargs)
        parts = [
            run_method_sweep(mini_zoo, rng=rng, trial_range=(0, 2), **kwargs),
            run_method_sweep(mini_zoo, rng=rng, trial_range=(2, 4), **kwargs),
        ]
        merged = merge_outcomes(parts)
        curve, expected = merged.curves["magnitude"], full.curves["magnitude"]
        assert np.array_equal(curve.accuracy_runs, expected.accuracy_runs)
        assert np.array_equal(curve.achieved_nwc, expected.achieved_nwc)
        assert merged.wear == full.wear
        assert merged.sigma == full.sigma

    def test_misaligned_window_is_rejected(self, mini_zoo):
        from repro.experiments.sweeps import run_method_sweep

        with pytest.raises(ValueError, match="block grid"):
            run_method_sweep(
                mini_zoo, sigma=0.1, nwc_targets=(0.0,), mc_runs=4,
                rng=RngStream(7), eval_samples=32, sense_samples=64,
                methods=("magnitude",), trial_range=(1, 3),
            )

    def test_tile_height_changes_schedule_not_results(self, mini_zoo):
        """REPRO_TILE_TRIALS re-tiles (different artifacts) but the
        merged outcomes are bit-identical at any tile height."""
        grid = lambda: _seeded_grid(23, mc_runs=4)
        coarse = _orchestrator(mini_zoo, PlanArtifactCache(disk=False))
        fine = _orchestrator(mini_zoo, PlanArtifactCache(disk=False))
        a = coarse.run(grid(), tile_trials=4, scenario="t")
        b = fine.run(grid(), tile_trials=2, scenario="t")
        assert coarse.report.tiles_total == 2  # one 4-trial tile per cell
        assert fine.report.tiles_total == 4  # two 2-trial tiles per cell
        _assert_outcomes_equal(a, b)


# -------------------------------------------------------------- CLI codes


def _runner_env(tmp_path, **extra):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = (
        os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    )
    env["REPRO_RESULTS_DIR"] = str(tmp_path / "results")
    env["REPRO_SCALE"] = "smoke"
    env.update({k: str(v) for k, v in extra.items()})
    return env


def _runner(args, env):
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments.runner", *args],
        env=env, capture_output=True, text=True, timeout=900,
    )


class TestRunnerExitCodes:
    def test_jobs_times_processes_schedules_and_completes(self, tmp_path):
        """Regression: ``--jobs 2 --processes 2`` used to exit 64 with a
        "pick one parallelism axis" error.  The work-rectangle scheduler
        combines them into one 4-worker pool; the run completes and its
        CSV is byte-identical to the serial run's."""
        serial = _runner(
            ["retention"],
            _runner_env(
                tmp_path / "serial", REPRO_CACHE_DIR=str(tmp_path / "c1")
            ),
        )
        assert serial.returncode == 0, serial.stderr[-2000:]
        serial_csv = (
            tmp_path / "serial" / "results" / "retention.csv"
        ).read_bytes()

        combined = _runner(
            ["retention", "--jobs", "2", "--processes", "2"],
            _runner_env(
                tmp_path / "both", REPRO_CACHE_DIR=str(tmp_path / "c2")
            ),
        )
        assert combined.returncode == 0, combined.stderr[-2000:]
        assert "deprecated" in combined.stdout
        combined_csv = (
            tmp_path / "both" / "results" / "retention.csv"
        ).read_bytes()
        assert combined_csv == serial_csv

    def test_env_only_jobs_and_processes_schedule(self, tmp_path):
        """Regression: REPRO_JOBS + REPRO_MC_PROCESSES with no CLI flags
        also used to exit 64; the env-only combination must schedule
        normally too."""
        proc = _runner(
            ["retention"],
            _runner_env(
                tmp_path,
                REPRO_CACHE_DIR=str(tmp_path / "cache"),
                REPRO_JOBS="2",
                REPRO_MC_PROCESSES="2",
            ),
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert (tmp_path / "results" / "retention.csv").exists()

    def test_unwritable_cache_dir_exit_74_one_line(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("file, not a directory")
        proc = _runner(
            ["retention"],
            _runner_env(tmp_path, REPRO_CACHE_DIR=str(blocker / "sub")),
        )
        assert proc.returncode == 74
        lines = [l for l in proc.stderr.splitlines() if l.strip()]
        assert len(lines) == 1 and lines[0].startswith("error:")

    def test_malformed_fault_schedule_exit_64(self, tmp_path):
        proc = _runner(
            ["retention", "--jobs", "2"],
            _runner_env(tmp_path, REPRO_FAULTS="explode:everything"),
        )
        assert proc.returncode == 64
        assert "fault" in proc.stderr


@pytest.mark.slow
class TestRunnerChaos:
    """The ISSUE's acceptance scenarios, end to end through the CLI."""

    def test_chaos_run_byte_identical_to_fault_free_serial(self, tmp_path):
        cache = tmp_path / "cache"
        baseline = _runner(
            ["retention"], _runner_env(
                tmp_path / "a", REPRO_CACHE_DIR=str(cache))
        )
        assert baseline.returncode == 0, baseline.stderr[-2000:]
        serial_csv = (tmp_path / "a" / "results" / "retention.csv").read_bytes()

        # Drop the baseline's evaluation tiles (keep the plan artifacts,
        # which is what corrupt:artifact@order needs to fire on read):
        # warm tiles would serve every cell from the cache and the
        # crash/hang faults — fired per scheduled tile — never trigger.
        for tile in (cache / "plan" / "v2").glob("eval-*.npz"):
            tile.unlink()

        chaos = _runner(
            ["retention", "--jobs", "2"],
            _runner_env(
                tmp_path / "b",
                REPRO_CACHE_DIR=str(cache),  # warm: corrupt can fire on read
                REPRO_FAULTS="corrupt:artifact@order;crash:cell@0;"
                             "hang:cell@2=300",
                REPRO_FAULTS_DIR=str(tmp_path / "ledger"),
                REPRO_CELL_TIMEOUT="30",
                REPRO_RESUME="0",
                REPRO_MC_PROCESSES="2",  # chaos + the combined knobs
            ),
        )
        assert chaos.returncode == 0, chaos.stderr[-2000:]
        assert "quarantined=1" in chaos.stdout
        assert "WorkerCrashError" in chaos.stdout
        assert "CellTimeoutError" in chaos.stdout
        assert "failed=0" in chaos.stdout
        chaos_csv = (tmp_path / "b" / "results" / "retention.csv").read_bytes()
        assert chaos_csv == serial_csv
        # All three scheduled faults actually fired.
        fired = os.listdir(tmp_path / "ledger")
        assert len(fired) == 3

    def test_resume_after_sigkill_skips_cells_same_bytes(self, tmp_path):
        reference = _runner(
            ["retention"], _runner_env(
                tmp_path / "ref", REPRO_CACHE_DIR=str(tmp_path / "cache-ref"))
        )
        assert reference.returncode == 0, reference.stderr[-2000:]
        ref_csv = (
            tmp_path / "ref" / "results" / "retention.csv"
        ).read_bytes()

        cache = tmp_path / "cache"
        env = _runner_env(tmp_path / "run", REPRO_CACHE_DIR=str(cache))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.experiments.runner", "retention"],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        # Wait for at least one cell checkpoint, then kill mid-grid.
        plan_dir = cache / "plan" / "v2"
        deadline = time.monotonic() + 300
        while time.monotonic() < deadline:
            done = (
                list(plan_dir.glob("cell-*.npz")) if plan_dir.exists() else []
            )
            if done:
                break
            if proc.poll() is not None:
                break  # finished before we could kill: resume still works
            time.sleep(0.2)
        if proc.poll() is None:
            os.kill(proc.pid, signal.SIGKILL)
        proc.wait()

        resumed = _runner(
            ["retention", "--resume"],
            _runner_env(tmp_path / "run", REPRO_CACHE_DIR=str(cache)),
        )
        assert resumed.returncode == 0, resumed.stderr[-2000:]
        assert "resumed" in resumed.stdout
        out_csv = (
            tmp_path / "run" / "results" / "retention.csv"
        ).read_bytes()
        assert out_csv == ref_csv
