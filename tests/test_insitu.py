"""In-situ training baseline: write counting, noise plateau, recovery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cim import CimAccelerator, DeviceConfig, MappingConfig
from repro.core import InSituConfig, InSituTrainer, evaluate_accuracy
from repro.utils.rng import RngStream


@pytest.fixture
def setup(trained_lenet):
    model, data, clean = trained_lenet
    config = MappingConfig(weight_bits=4, device=DeviceConfig(bits=4, sigma=0.15))
    accelerator = CimAccelerator(model, mapping_config=config)
    yield model, data, clean, accelerator
    accelerator.clear()


def test_config_validation():
    with pytest.raises(ValueError, match="update_rule"):
        InSituConfig(update_rule="newton")
    with pytest.raises(ValueError, match="lr"):
        InSituConfig(lr=0.0)


def test_initialize_required_before_run(setup):
    model, data, clean, accelerator = setup
    trainer = InSituTrainer(model, accelerator)
    with pytest.raises(RuntimeError, match="initialize"):
        trainer.run(data.train_x, data.train_y, 1, RngStream(0))
    with pytest.raises(RuntimeError, match="initialize"):
        trainer.nwc


def test_write_counting_matches_iterations(setup):
    model, data, clean, accelerator = setup
    trainer = InSituTrainer(model, accelerator,
                            InSituConfig(lr=0.02, batch_size=32))
    rng = RngStream(21)
    trainer.initialize(rng.child("init"))
    n_weights = accelerator.num_weights()
    trainer.run(data.train_x, data.train_y, 3, rng.child("run"))
    assert trainer._writes == 3 * n_weights
    assert trainer.nwc == pytest.approx(
        3 * n_weights / accelerator.total_cycles()
    )


def test_iterations_for_nwc_round_trip(setup):
    model, data, clean, accelerator = setup
    trainer = InSituTrainer(model, accelerator)
    trainer.initialize(RngStream(22).child("init"))
    iters = trainer.iterations_for_nwc(1.0)
    # ~10 verify cycles per weight -> ~10 iterations per unit NWC.
    assert 5 <= iters <= 20


def test_insitu_improves_over_unverified_mapping(setup):
    """A few on-chip iterations recover accuracy lost to mapping noise."""
    model, data, clean, accelerator = setup
    trainer = InSituTrainer(
        model, accelerator, InSituConfig(lr=0.03, batch_size=64)
    )
    rng = RngStream(23)
    trainer.initialize(rng.child("init"))
    noisy_accuracy = evaluate_accuracy(model, data.test_x, data.test_y)
    history = trainer.run(
        data.train_x, data.train_y, 8, rng.child("run"),
        eval_x=data.test_x, eval_y=data.test_y, eval_every=8,
    )
    assert history.accuracy[-1] > noisy_accuracy - 0.02
    # With a sensible LR it should actually improve most runs; allow slack
    # but require clear improvement over the worst case.
    assert history.accuracy[-1] >= noisy_accuracy or noisy_accuracy > 0.95


def test_update_noise_keeps_accuracy_below_writeverify(setup):
    """Unverified updates carry programming noise: in-situ cannot reach the
    fully write-verified accuracy in a comparable cycle budget."""
    model, data, clean, accelerator = setup
    rng = RngStream(24)
    trainer = InSituTrainer(
        model, accelerator, InSituConfig(lr=0.03, batch_size=64)
    )
    trainer.initialize(rng.child("init"))
    iters = trainer.iterations_for_nwc(1.0)
    history = trainer.run(
        data.train_x, data.train_y, iters, rng.child("run"),
        eval_x=data.test_x, eval_y=data.test_y,
    )
    insitu_acc = history.accuracy[-1]

    accelerator.program(rng.child("p2").generator)
    accelerator.write_verify_all(rng.child("wv2").generator)
    accelerator.apply_all()
    wv_acc = evaluate_accuracy(model, data.test_x, data.test_y)
    assert insitu_acc <= wv_acc + 0.01


def test_sign_rule_runs_and_counts(setup):
    model, data, clean, accelerator = setup
    trainer = InSituTrainer(
        model, accelerator,
        InSituConfig(lr=0.03, update_rule="sign", sign_step_codes=0.25),
    )
    rng = RngStream(25)
    trainer.initialize(rng.child("init"))
    history = trainer.run(
        data.train_x, data.train_y, 2, rng.child("run"),
        eval_x=data.test_x[:100], eval_y=data.test_y[:100],
    )
    assert trainer._writes == 2 * accelerator.num_weights()
    assert len(history.accuracy) == 1


def test_devices_saturate_at_representable_range(setup):
    model, data, clean, accelerator = setup
    trainer = InSituTrainer(
        model, accelerator, InSituConfig(lr=50.0, batch_size=16)
    )
    rng = RngStream(26)
    trainer.initialize(rng.child("init"))
    trainer.run(data.train_x, data.train_y, 2, rng.child("run"))
    for name, mapped in accelerator.map_model().items():
        layer = accelerator._layers[name]
        bound = accelerator.mapping_config.qmax * mapped.scale
        assert np.abs(layer.weight_override).max() <= bound + 1e-6
