"""Iso-accuracy speedups (the paper's headline metric) and endurance wear."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cim.endurance import EnduranceModel
from repro.core.pareto import nwc_to_reach, speedup_at_iso_accuracy, speedup_table


# ----------------------------------------------------------------- pareto

def test_nwc_to_reach_interpolates():
    nwc = [0.0, 0.1, 0.5, 1.0]
    acc = [0.80, 0.90, 0.95, 0.95]
    assert nwc_to_reach(nwc, acc, 0.90) == pytest.approx(0.1)
    # Halfway between 0.90 and 0.95 -> halfway between 0.1 and 0.5.
    assert nwc_to_reach(nwc, acc, 0.925) == pytest.approx(0.3)
    assert nwc_to_reach(nwc, acc, 0.80) == 0.0
    assert nwc_to_reach(nwc, acc, 0.99) is None


def test_nwc_to_reach_unsorted_input():
    assert nwc_to_reach([1.0, 0.0, 0.5], [0.95, 0.8, 0.9], 0.9) == pytest.approx(0.5)


def test_nwc_to_reach_validates():
    with pytest.raises(ValueError):
        nwc_to_reach([0, 1], [0.5], 0.4)


def test_speedup_reproduces_paper_style_numbers():
    """SWIM reaching target at 0.1 vs Random at 0.9 -> the paper's 9x."""
    swim_nwc, swim_acc = [0.0, 0.1, 1.0], [0.9, 0.98, 0.985]
    rand_nwc, rand_acc = [0.0, 0.5, 0.9, 1.0], [0.9, 0.95, 0.98, 0.985]
    speedup = speedup_at_iso_accuracy(swim_nwc, swim_acc, rand_nwc, rand_acc,
                                      target=0.98)
    assert speedup == pytest.approx(9.0)


def test_speedup_handles_unreachable_and_zero():
    assert speedup_at_iso_accuracy([0, 1], [0.5, 0.6], [0, 1], [0.5, 0.55],
                                   target=0.9) is None
    assert speedup_at_iso_accuracy([0, 1], [0.95, 0.99], [0, 1], [0.5, 0.95],
                                   target=0.9) == float("inf")


def test_speedup_table_from_sweep_outcome():
    from repro.experiments.sweeps import MethodCurve, SweepOutcome

    outcome = SweepOutcome(workload="w", sigma=0.1, clean_accuracy=0.99,
                           nwc_targets=(0.0, 0.1, 1.0))
    outcome.curves["swim"] = MethodCurve(
        method="swim", nwc_targets=(0.0, 0.1, 1.0),
        accuracy_runs=np.array([[0.9, 0.98, 0.985]]),
        achieved_nwc=np.array([0.0, 0.1, 1.0]),
    )
    outcome.curves["random"] = MethodCurve(
        method="random", nwc_targets=(0.0, 0.1, 1.0),
        accuracy_runs=np.array([[0.9, 0.91, 0.985]]),
        achieved_nwc=np.array([0.0, 0.1, 1.0]),
    )
    rows = speedup_table(outcome, targets=[0.98])
    target, speedups = rows[0]
    assert target == 0.98
    assert speedups["random"] == pytest.approx(
        nwc_to_reach([0.0, 0.1, 1.0], [0.9, 0.91, 0.985], 0.98) / 0.1
    )


# -------------------------------------------------------------- endurance

def test_wear_report_counts_initial_write():
    model = EnduranceModel(endurance_cycles=1000)
    report = model.wear_report(np.array([0, 5, 20]))
    assert report.total_pulses == 3 + 25
    assert report.max_pulses_per_device == 21
    assert report.deployments_to_failure == pytest.approx(1000 / 21)


def test_compare_selection_lifetime_gain():
    model = EnduranceModel()
    cycles = np.full(100, 10)
    mask = np.zeros(100, dtype=bool)
    mask[:10] = True  # verify only 10%
    result = model.compare_selection(cycles, mask)
    # Full: 11 pulses/device mean; selective: 1 + 10*0.1 = 2.
    assert result["full"].mean_pulses_per_device == pytest.approx(11.0)
    assert result["selective"].mean_pulses_per_device == pytest.approx(2.0)
    assert result["lifetime_gain"] == pytest.approx(5.5)


def test_compare_selection_validates_shapes():
    model = EnduranceModel()
    with pytest.raises(ValueError):
        model.compare_selection(np.zeros(3), np.zeros(4, dtype=bool))


def test_endurance_validation():
    with pytest.raises(ValueError):
        EnduranceModel(endurance_cycles=0)


def test_wear_from_accelerator_cycles(trained_lenet):
    """End to end: SWIM's 10% selection cuts mean wear several-fold."""
    from repro.cim import CimAccelerator, DeviceConfig, MappingConfig
    from repro.utils.rng import RngStream

    model, data, _ = trained_lenet
    accelerator = CimAccelerator(
        model,
        mapping_config=MappingConfig(weight_bits=4,
                                     device=DeviceConfig(bits=4, sigma=0.1)),
    )
    rng = RngStream(808)
    accelerator.program(rng.child("p").generator)
    accelerator.write_verify_all(rng.child("wv").generator)
    cycles = np.concatenate([
        c.reshape(-1) for c in accelerator.weight_cycles().values()
    ])
    mask = np.zeros(cycles.size, dtype=bool)
    mask[: cycles.size // 10] = True
    result = EnduranceModel().compare_selection(cycles, mask)
    assert result["lifetime_gain"] > 2.0
    accelerator.clear()
