"""Extensions: spatial variation, retention drift, cost model, hetero-SWIM."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cim import (
    CostModel,
    DeviceConfig,
    MappingConfig,
    RetentionModel,
    SpatialVariationModel,
    format_duration,
)
from repro.core import (
    HeteroSwimScorer,
    SwimScorer,
    WeightSpace,
    expected_loss_increase,
    variance_map_from_mapping,
)
from repro.nn.losses import CrossEntropyLoss
from repro.nn.models import mlp

from .helpers import to_float64


# ------------------------------------------------------------- spatial

def test_spatial_marginal_std_matches_sigma():
    # global_fraction=0: the wafer offset is constant within one field, so
    # the single-field std only reflects the local component.
    model = SpatialVariationModel(sigma=0.1, correlation_length=6.0,
                                  global_fraction=0.0)
    rng = np.random.default_rng(0)
    field = model.sample_field(20000, rng)
    assert field.std() == pytest.approx(0.1 * 15, rel=0.1)


def test_spatial_correlation_decays_with_lag():
    model = SpatialVariationModel(sigma=0.1, correlation_length=6.0,
                                  global_fraction=0.0)
    near = model.correlation_at_lag(1)
    far = model.correlation_at_lag(40)
    assert near > 0.5
    assert far < near - 0.3


def test_spatial_zero_length_is_iid():
    model = SpatialVariationModel(sigma=0.1, correlation_length=0.0,
                                  global_fraction=0.0)
    assert abs(model.correlation_at_lag(1)) < 0.1


def test_spatial_global_component_shifts_everything():
    model = SpatialVariationModel(sigma=0.1, correlation_length=0.0,
                                  global_fraction=0.9)
    rng = np.random.default_rng(3)
    fields = [model.sample_field(500, np.random.default_rng(s)).mean()
              for s in range(30)]
    # Array means vary strongly run to run when global fraction is high.
    assert np.std(fields) > 0.1


def test_spatial_validation():
    with pytest.raises(ValueError):
        SpatialVariationModel(sigma=-0.1)
    with pytest.raises(ValueError):
        SpatialVariationModel(global_fraction=1.0)


def test_spatial_zero_sigma_is_zero_field():
    model = SpatialVariationModel(sigma=0.0)
    field = model.sample_field(100, np.random.default_rng(0))
    np.testing.assert_array_equal(field, 0.0)


# ------------------------------------------------------------ retention

def test_retention_identity_at_t0():
    model = RetentionModel(nu=0.05, sigma_nu=0.0, relaxation_sigma=0.0)
    levels = np.linspace(0, 15, 16)
    out = model.apply(levels, t=model.t0, rng=np.random.default_rng(0))
    np.testing.assert_array_equal(out, levels)


def test_retention_drifts_down_over_time():
    model = RetentionModel(nu=0.05, sigma_nu=0.0, relaxation_sigma=0.0)
    levels = np.full(1000, 10.0)
    day = model.apply(levels, t=86400.0, rng=np.random.default_rng(0))
    assert np.all(day < levels)
    month = model.apply(levels, t=30 * 86400.0, rng=np.random.default_rng(0))
    assert month.mean() < day.mean()


def test_retention_mean_shift_formula():
    model = RetentionModel(nu=0.05, sigma_nu=0.0, relaxation_sigma=0.0)
    levels = np.full(200, 8.0)
    t = 3600.0
    drifted = model.apply(levels, t, rng=np.random.default_rng(0))
    want = model.mean_relative_shift(t)
    assert (1 - drifted.mean() / 8.0) == pytest.approx(want, rel=1e-9)


def test_retention_relaxation_adds_spread():
    quiet = RetentionModel(nu=0.0, sigma_nu=0.0, relaxation_sigma=0.0)
    noisy = RetentionModel(nu=0.0, sigma_nu=0.0, relaxation_sigma=0.02)
    levels = np.full(5000, 8.0)
    a = quiet.apply(levels, 1e4, np.random.default_rng(1))
    b = noisy.apply(levels, 1e4, np.random.default_rng(1))
    assert a.std() == 0.0
    assert b.std() > 0.05


def test_retention_validates_time():
    model = RetentionModel()
    with pytest.raises(ValueError, match="t0"):
        model.apply(np.ones(3), t=0.5, rng=np.random.default_rng(0))


# ----------------------------------------------------------------- cost

def test_format_duration_units():
    assert format_duration(0.5).endswith("ms")
    assert format_duration(90) == "1min 30s"
    assert format_duration(86400 * 6.5).startswith("6d")


def test_resnet18_full_writeverify_takes_days():
    """The paper's Sec. 1 headline: ~a week for ResNet-18."""
    cost = CostModel()
    estimate = cost.estimate_full_write_verify(1.12e7, mean_cycles=10)
    days = estimate["seconds"] / 86400
    assert 3 < days < 14
    assert "d" in estimate["human"]


def test_speedup_report_scales():
    cost = CostModel()
    report = cost.speedup_report(1.12e7, nwc=0.1)
    assert report["speedup"] == pytest.approx(10.0)
    assert report["saved_seconds"] > 0


def test_cost_model_validation():
    with pytest.raises(ValueError):
        CostModel(seconds_per_cycle=0)


# ---------------------------------------------------------- hetero-SWIM

@pytest.fixture
def setup(rng):
    model = to_float64(mlp(rng.child("m"), (6, 10, 4), activation="relu"))
    space = WeightSpace.from_model(model)
    x = rng.child("x").normal(size=(24, 6))
    y = rng.child("y").integers(0, 4, size=24)
    return model, space, x, y


def test_hetero_reduces_to_swim_with_constant_variance(setup):
    model, space, x, y = setup
    plain = SwimScorer(batch_size=24).scores(model, space, x, y)
    hetero = HeteroSwimScorer(
        variance_provider=lambda m, s: np.ones(s.total_size),
        batch_size=24,
    ).scores(model, space, x, y)
    np.testing.assert_allclose(hetero, plain, rtol=1e-10)


def test_hetero_variance_reweights_ranking(setup):
    model, space, x, y = setup
    variance = np.ones(space.total_size)
    variance[: space.total_size // 2] = 100.0  # first tensor much noisier
    scorer = HeteroSwimScorer(
        variance_provider=lambda m, s: variance, batch_size=24
    )
    scores = scorer.scores(model, space, x, y)
    plain = SwimScorer(batch_size=24).scores(model, space, x, y)
    np.testing.assert_allclose(
        scores[: space.total_size // 2],
        100.0 * plain[: space.total_size // 2],
        rtol=1e-10,
    )


def test_hetero_requires_some_variance_source():
    with pytest.raises(ValueError, match="variance_provider"):
        HeteroSwimScorer()


def test_hetero_shape_mismatch_names_the_tensors(setup):
    """A bad flat variance map fails with the space's tensors spelled out."""
    model, space, x, y = setup
    scorer = HeteroSwimScorer(
        variance_provider=lambda m, s: np.ones(s.total_size + 3),
        batch_size=24,
    )
    with pytest.raises(ValueError) as err:
        scorer.scores(model, space, x, y)
    message = str(err.value)
    assert f"({space.total_size},)" in message
    for name in space.names:
        assert f"{name}{space.shape_of(name)}" in message


def test_hetero_dict_variance_validates_per_tensor(setup):
    """Dict providers work, and a wrong tensor shape is named in the error."""
    model, space, x, y = setup
    good = {name: np.ones(space.shape_of(name)) for name in space.names}
    scores = HeteroSwimScorer(
        variance_provider=lambda m, s: good, batch_size=24
    ).scores(model, space, x, y)
    plain = SwimScorer(batch_size=24).scores(model, space, x, y)
    np.testing.assert_allclose(scores, plain, rtol=1e-10)

    bad_name = space.names[1]
    bad = dict(good)
    bad[bad_name] = np.ones((2, 2))
    with pytest.raises(ValueError, match=bad_name):
        HeteroSwimScorer(
            variance_provider=lambda m, s: bad, batch_size=24
        ).scores(model, space, x, y)
    with pytest.raises(ValueError, match="missing tensors"):
        HeteroSwimScorer(
            variance_provider=lambda m, s: {space.names[0]: good[space.names[0]]},
            batch_size=24,
        ).scores(model, space, x, y)


def test_hetero_technology_constructor_path(setup):
    """technology= derives mapping + stack; without drift or spatial it
    reduces exactly to the mapping-config variance."""
    model, space, x, y = setup
    by_tech = HeteroSwimScorer(technology="fefet", batch_size=24)
    assert by_tech.mapping_config is not None and by_tech.stack is not None
    from repro.cim import get_technology

    by_mapping = HeteroSwimScorer(
        mapping_config=get_technology("fefet").mapping_config(), batch_size=24
    )
    np.testing.assert_array_equal(
        by_tech.scores(model, space, x, y),
        by_mapping.scores(model, space, x, y),
    )
    # At a drifted read time the stack path diverges from the constant map.
    drifted = HeteroSwimScorer(
        technology="pcm", read_time=2.592e6, batch_size=24
    ).scores(model, space, x, y)
    assert not np.allclose(drifted, by_tech.scores(model, space, x, y))


def test_hetero_stack_requires_mapping():
    from repro.cim import NonidealityStack

    with pytest.raises(ValueError, match="mapping_config"):
        HeteroSwimScorer(stack=NonidealityStack.default())


def test_variance_map_uses_per_tensor_scales(setup):
    model, space, x, y = setup
    # Make the two weight tensors very different in magnitude.
    params = dict(model.named_parameters())
    params[space.names[0]].data *= 10.0
    mapping = MappingConfig(weight_bits=4, device=DeviceConfig(bits=4, sigma=0.1))
    variance = variance_map_from_mapping(space, model, mapping)
    per_tensor = space.unflatten(variance)
    v0 = per_tensor[space.names[0]].flat[0]
    v1 = per_tensor[space.names[1]].flat[0]
    assert v0 > v1 * 10


def test_expected_loss_increase_matches_monte_carlo(rng):
    """Eq. 5 vs the truth on a converged two-layer MSE model.

    This is the regime where the paper's approximation is exact: the
    gradient vanishes (trained to convergence, killing the linear Taylor
    term's Monte Carlo noise) and the loss is quadratic-dominated.  For
    independent zero-mean perturbations, ``E[dw' H dw] = sum_i H_ii
    var_i`` holds for *any* Hessian, so the diagonal estimate predicts
    the mean loss increase.
    """
    from repro.nn import Adam
    from repro.nn.losses import MSELoss

    model = to_float64(mlp(rng.child("m"), (5, 8, 3), activation="tanh"))
    x = rng.child("x").normal(size=(32, 5))
    targets = rng.child("t").normal(size=(32, 3))
    loss = MSELoss()
    optimizer = Adam(model.parameters(), lr=0.02)
    for _ in range(400):
        value = loss(model(x), targets)
        model.zero_grad()
        model.backward(loss.backward())
        optimizer.step()
    base = loss(model(x), targets)

    space = WeightSpace.from_model(model)
    curvature = SwimScorer(batch_size=32, loss=MSELoss()).scores(
        model, space, x, targets
    )
    sigma_w = 0.01
    predicted = expected_loss_increase(curvature, sigma_w ** 2)

    params = dict(model.named_parameters())
    gen = np.random.default_rng(7)
    originals = {n: params[n].data.copy() for n in space.names}
    increases = []
    for _ in range(500):
        for name in space.names:
            params[name].data = originals[name] + gen.normal(
                0.0, sigma_w, size=originals[name].shape
            )
        increases.append(loss(model(x), targets) - base)
    for name in space.names:
        params[name].data = originals[name]
    measured = float(np.mean(increases))
    assert measured > 0
    assert predicted == pytest.approx(measured, rel=0.35)
