"""Test suite package.

This file makes ``tests/`` an importable package so the relative imports
of shared helpers (``from .helpers import ...``) resolve when pytest
collects from the repository root.
"""
