"""Training loop: learning happens, histories record, QAT path works."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Adam,
    TrainConfig,
    Trainer,
    constant_schedule,
    evaluate_accuracy,
    iterate_batches,
)
from repro.nn.models import mlp
from repro.utils.rng import RngStream


def _blobs(rng, n=240, dims=6, classes=3, spread=0.4):
    """Separable Gaussian blobs."""
    gen = rng.generator
    centers = gen.normal(size=(classes, dims)) * 2.0
    y = np.arange(n) % classes
    x = centers[y] + gen.normal(size=(n, dims)) * spread
    return x.astype(np.float32), y.astype(np.int64)


def test_iterate_batches_covers_everything(rng):
    x = np.arange(10).reshape(10, 1)
    y = np.arange(10)
    seen = []
    for xb, yb in iterate_batches(x, y, batch_size=3):
        assert xb.shape[0] == yb.shape[0]
        seen.extend(yb.tolist())
    assert sorted(seen) == list(range(10))


def test_iterate_batches_shuffles_with_rng(rng):
    x = np.arange(20).reshape(20, 1)
    y = np.arange(20)
    order_a = [yb.tolist() for _, yb in iterate_batches(
        x, y, 5, rng=np.random.default_rng(1))]
    order_b = [yb.tolist() for _, yb in iterate_batches(
        x, y, 5, rng=np.random.default_rng(2))]
    assert order_a != order_b


def test_training_reaches_high_accuracy(rng):
    x, y = _blobs(rng.child("data"))
    model = mlp(rng.child("model"), (6, 16, 3))
    trainer = Trainer(SGD(model.parameters(), lr=0.1, momentum=0.9),
                      rng=rng.child("shuffle"))
    history = trainer.fit(model, x, y, x, y,
                          config=TrainConfig(epochs=20, batch_size=32))
    assert history.test_accuracy[-1] > 0.95
    assert history.train_loss[0] > history.train_loss[-1]
    assert len(history.train_loss) == 20
    assert history.final_test_accuracy == history.test_accuracy[-1]


def test_adam_trains_too(rng):
    x, y = _blobs(rng.child("data"))
    model = mlp(rng.child("model"), (6, 16, 3))
    trainer = Trainer(Adam(model.parameters(), lr=0.01), rng=rng.child("s"))
    history = trainer.fit(model, x, y, x, y,
                          config=TrainConfig(epochs=20, batch_size=32))
    assert history.test_accuracy[-1] > 0.95


def test_schedule_applied_per_epoch(rng):
    x, y = _blobs(rng.child("data"), n=60)
    model = mlp(rng.child("model"), (6, 8, 3))
    optimizer = SGD(model.parameters(), lr=999.0)
    trainer = Trainer(optimizer, schedule=constant_schedule(0.05),
                      rng=rng.child("s"))
    history = trainer.fit(model, x, y,
                          config=TrainConfig(epochs=3, batch_size=32))
    assert history.learning_rate == [0.05, 0.05, 0.05]
    assert optimizer.lr == 0.05


def test_qat_flag_attaches_quantizers(rng):
    x, y = _blobs(rng.child("data"), n=60)
    model = mlp(rng.child("model"), (6, 8, 3))
    trainer = Trainer(SGD(model.parameters(), lr=0.05), rng=rng.child("s"))
    trainer.fit(model, x, y,
                config=TrainConfig(epochs=2, batch_size=32, weight_bits=4))
    weighted = [m for m in model.modules()
                if getattr(m, "weight_quantizer", None) is not None]
    assert len(weighted) == 2


def test_model_left_in_eval_mode(rng):
    x, y = _blobs(rng.child("data"), n=60)
    model = mlp(rng.child("model"), (6, 8, 3))
    trainer = Trainer(SGD(model.parameters(), lr=0.05), rng=rng.child("s"))
    trainer.fit(model, x, y, config=TrainConfig(epochs=1, batch_size=32))
    assert not model.training


def test_evaluate_accuracy_preserves_mode(rng):
    x, y = _blobs(rng.child("data"), n=60)
    model = mlp(rng.child("model"), (6, 8, 3))
    model.train()
    evaluate_accuracy(model, x, y)
    assert model.training
    model.eval()
    evaluate_accuracy(model, x, y)
    assert not model.training


def test_deterministic_training_given_seed(rng):
    x, y = _blobs(rng.child("data"), n=120)

    def train_once():
        model = mlp(RngStream(11).child("model"), (6, 8, 3))
        trainer = Trainer(SGD(model.parameters(), lr=0.05, momentum=0.9),
                          rng=RngStream(12).child("shuffle"))
        trainer.fit(model, x, y, config=TrainConfig(epochs=3, batch_size=32))
        return model.state_dict()

    a = train_once()
    b = train_once()
    for name in a:
        np.testing.assert_array_equal(a[name], b[name])
