"""Work-rectangle scheduler: worker resolution and tile decomposition.

Pins the scheduler's contracts: ``0`` means "auto-size to the core
count" in every resolver, the deprecated jobs x processes pair combines
into one worker count instead of conflicting, and tile boundaries are a
pure function of (trial count, block size, tile height) — never of the
worker count — and always align to the engine's trial-block grid.
"""

from __future__ import annotations

import os

import pytest

from repro.core.mc import (
    MonteCarloEngine,
    default_trial_block,
    no_trial_pool,
    resolve_processes,
)
from repro.robustness import ScenarioConfigError
from repro.robustness.scheduler import (
    DEFAULT_TILES_PER_CELL,
    Tile,
    auto_workers,
    resolve_tile_trials,
    resolve_worker_count,
    resolve_workers,
    tile_ranges,
)
from repro.utils.rng import RngStream


class TestWorkerResolution:
    def test_explicit_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert resolve_worker_count(3, "REPRO_WORKERS", "workers") == 3

    def test_env_fallback_and_unset_means_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_worker_count(None, "REPRO_WORKERS", "workers") is None
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_worker_count(None, "REPRO_WORKERS", "workers") == 5

    def test_zero_means_auto_in_every_resolver(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: set(range(6)),
                            raising=False)
        assert auto_workers() == 6
        assert resolve_worker_count(0, "REPRO_WORKERS", "workers") == 6
        assert resolve_processes(0) == 6
        monkeypatch.setenv("REPRO_MC_PROCESSES", "0")
        assert resolve_processes() == 6

    def test_auto_workers_falls_back_to_cpu_count(self, monkeypatch):
        def unsupported(pid):
            raise OSError("no affinity on this platform")

        monkeypatch.setattr(os, "sched_getaffinity", unsupported,
                            raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 3)
        assert auto_workers() == 3

    def test_negative_is_a_config_error(self):
        with pytest.raises(ScenarioConfigError, match="workers"):
            resolve_worker_count(-1, "REPRO_WORKERS", "workers")

    def test_garbage_env_is_a_config_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ScenarioConfigError, match="REPRO_WORKERS"):
            resolve_worker_count(None, "REPRO_WORKERS", "workers")

    def test_workers_knob_is_authoritative(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "8")
        assert resolve_workers(workers=2, jobs=3, processes=3) == 2
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers(jobs=3, processes=3) == 5

    def test_deprecated_pair_combines_into_a_product(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(jobs=2, processes=3) == 6
        assert resolve_workers(jobs=2) == 2
        assert resolve_workers(processes=4) == 4
        monkeypatch.setenv("REPRO_JOBS", "2")
        monkeypatch.setenv("REPRO_MC_PROCESSES", "2")
        assert resolve_workers() == 4

    def test_no_knob_means_serial(self, monkeypatch):
        for env in ("REPRO_WORKERS", "REPRO_JOBS", "REPRO_MC_PROCESSES"):
            monkeypatch.delenv(env, raising=False)
        assert resolve_workers() is None

    def test_no_trial_pool_disables_the_engine_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_MC_PROCESSES", "4")
        assert resolve_processes() == 4
        with no_trial_pool():
            assert resolve_processes() is None
            assert resolve_processes(8) is None
            engine = MonteCarloEngine(4, RngStream(1))
            assert engine.processes is None
        assert resolve_processes() == 4


class TestTileTrials:
    def test_arg_then_env_then_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_TILE_TRIALS", raising=False)
        assert resolve_tile_trials() is None
        assert resolve_tile_trials(5) == 5
        monkeypatch.setenv("REPRO_TILE_TRIALS", "3")
        assert resolve_tile_trials() == 3

    def test_invalid_values_are_config_errors(self, monkeypatch):
        with pytest.raises(ScenarioConfigError, match="tile_trials"):
            resolve_tile_trials(0)
        monkeypatch.setenv("REPRO_TILE_TRIALS", "a few")
        with pytest.raises(ScenarioConfigError, match="REPRO_TILE_TRIALS"):
            resolve_tile_trials()


class TestTileRanges:
    def test_tiles_cover_the_trial_axis_exactly_once(self):
        ranges = tile_ranges(100, 2, tile_trials=16)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 100
        for (_, stop), (start, _) in zip(ranges, ranges[1:]):
            assert stop == start

    def test_tiles_align_to_the_block_grid(self):
        for start, stop in tile_ranges(100, 4, tile_trials=10):
            assert start % 4 == 0
            assert stop % 4 == 0 or stop == 100

    def test_tile_trials_rounds_up_to_whole_blocks(self):
        assert tile_ranges(8, 2, tile_trials=3) == [(0, 4), (4, 8)]

    def test_default_heuristic_caps_tiles_per_cell(self):
        ranges = tile_ranges(3000, 2)
        assert len(ranges) <= DEFAULT_TILES_PER_CELL
        assert tile_ranges(2, 2) == [(0, 2)]

    def test_boundaries_independent_of_everything_but_inputs(self):
        assert tile_ranges(10, 2, tile_trials=4) == [(0, 4), (4, 8), (8, 10)]
        assert tile_ranges(1, 2) == [(0, 1)]
        with pytest.raises(ValueError):
            tile_ranges(0, 2)

    def test_tile_carries_its_trial_count(self):
        tile = Tile(cell=3, start=4, stop=10)
        assert tile.trials == 6


class TestEngineWindow:
    def test_block_anchors_are_absolute_under_a_window(self):
        engine = MonteCarloEngine(8, RngStream(1), trial_range=(2, 6))
        assert engine.span == (2, 6)
        blocks = [b.tolist() for b in engine.blocks()]
        assert blocks == [[2, 3], [4, 5]]
        # A window that starts mid-block still anchors to the grid.
        offcut = MonteCarloEngine(8, RngStream(1), trial_range=(3, 6))
        assert [b.tolist() for b in offcut.blocks()] == [[3], [4, 5]]

    def test_substreams_use_absolute_trial_indices(self):
        whole = MonteCarloEngine(8, RngStream(9))
        window = MonteCarloEngine(8, RngStream(9), trial_range=(4, 6))
        assert window.substreams()[0].seed == whole.substream(4).seed

    def test_window_validation(self):
        with pytest.raises(ValueError, match="trial_range"):
            MonteCarloEngine(4, RngStream(1), trial_range=(2, 8))
        with pytest.raises(ValueError, match="trial_range"):
            MonteCarloEngine(4, RngStream(1), trial_range=(3, 3))

    def test_map_trials_covers_only_the_window(self):
        engine = MonteCarloEngine(10, RngStream(1), trial_range=(4, 8))
        assert engine.map_trials(lambda i: i) == [4, 5, 6, 7]

    def test_default_trial_block_grain(self):
        assert default_trial_block(256) == 2
        assert default_trial_block(256, trial_block=5) == 5
        assert default_trial_block(4096) == 1
