"""Array-level building blocks: im2col/col2im, softmax, one-hot."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F


def test_conv_output_size():
    assert F.conv_output_size(28, 5, 1, 2) == 28
    assert F.conv_output_size(28, 2, 2, 0) == 14
    with pytest.raises(ValueError):
        F.conv_output_size(3, 5, 1, 0)


def test_im2col_matches_naive_convolution(rng):
    """Convolution via im2col equals the direct nested-loop definition."""
    x = rng.child("x").normal(size=(2, 3, 6, 7))
    w = rng.child("w").normal(size=(4, 3, 3, 3))
    stride, padding = 2, 1
    cols, out_h, out_w = F.im2col(x, (3, 3), stride=stride, padding=padding)
    out = (w.reshape(4, -1) @ cols).reshape(4, 2, out_h, out_w).transpose(1, 0, 2, 3)

    xp = F.pad2d(x, padding)
    want = np.zeros_like(out)
    for n in range(2):
        for f in range(4):
            for i in range(out_h):
                for j in range(out_w):
                    patch = xp[n, :, i * stride : i * stride + 3,
                               j * stride : j * stride + 3]
                    want[n, f, i, j] = (patch * w[f]).sum()
    np.testing.assert_allclose(out, want, rtol=1e-6, atol=1e-6)


def test_col2im_is_adjoint_of_im2col(rng):
    """<im2col(x), y> == <x, col2im(y)> — the defining adjoint property."""
    x = rng.child("x").normal(size=(2, 2, 5, 5))
    cols, _, _ = F.im2col(x, (3, 3), stride=1, padding=1)
    y = rng.child("y").normal(size=cols.shape)
    lhs = float((cols * y).sum())
    back = F.col2im(y, x.shape, (3, 3), stride=1, padding=1)
    rhs = float((x * back).sum())
    assert lhs == pytest.approx(rhs, rel=1e-10)


@settings(max_examples=20, deadline=None)
@given(
    h=st.integers(4, 9),
    w=st.integers(4, 9),
    k=st.integers(1, 3),
    stride=st.integers(1, 2),
    padding=st.integers(0, 2),
    seed=st.integers(0, 1000),
)
def test_adjoint_property_holds_generally(h, w, k, stride, padding, seed):
    gen = np.random.default_rng(seed)
    x = gen.normal(size=(1, 2, h, w))
    cols, _, _ = F.im2col(x, (k, k), stride=stride, padding=padding)
    y = gen.normal(size=cols.shape)
    lhs = float((cols * y).sum())
    back = F.col2im(y, x.shape, (k, k), stride=stride, padding=padding)
    rhs = float((x * back).sum())
    assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-9)


def test_pad_unpad_roundtrip(rng):
    x = rng.child("x").normal(size=(1, 1, 4, 4))
    np.testing.assert_array_equal(F.unpad2d(F.pad2d(x, 2), 2), x)


def test_softmax_rows_sum_to_one(rng):
    logits = rng.child("l").normal(size=(6, 9)) * 10
    probs = F.softmax(logits, axis=1)
    np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-10)
    assert probs.min() >= 0


def test_log_softmax_consistent_with_softmax(rng):
    logits = rng.child("l").normal(size=(4, 5))
    np.testing.assert_allclose(
        np.exp(F.log_softmax(logits)), F.softmax(logits), rtol=1e-10
    )


def test_softmax_extreme_values_stable():
    logits = np.array([[1e4, 0.0, -1e4]])
    probs = F.softmax(logits)
    assert np.all(np.isfinite(probs))
    assert probs[0, 0] == pytest.approx(1.0)


def test_one_hot_basics():
    out = F.one_hot(np.array([0, 2, 1]), 3)
    np.testing.assert_array_equal(
        out, [[1, 0, 0], [0, 0, 1], [0, 1, 0]]
    )
    with pytest.raises(ValueError, match="range"):
        F.one_hot(np.array([3]), 3)
    with pytest.raises(ValueError, match="1-D"):
        F.one_hot(np.zeros((2, 2), dtype=np.int64), 3)


def test_one_hot_dtype_derivation():
    labels = np.array([0, 1])
    # Default stays float64; `like` derives from the logits; explicit wins.
    assert F.one_hot(labels, 2).dtype == np.float64
    logits32 = np.zeros((2, 2), dtype=np.float32)
    assert F.one_hot(labels, 2, like=logits32).dtype == np.float32
    assert F.one_hot(labels, 2, dtype=np.float16, like=logits32).dtype == np.float16


def test_cross_entropy_backward_preserves_float32():
    """Float32 models must not be upcast through the loss backward path."""
    from repro.nn.losses import CrossEntropyLoss

    logits = np.random.default_rng(0).normal(size=(8, 4)).astype(np.float32)
    targets = np.arange(8) % 4
    loss = CrossEntropyLoss()
    loss(logits, targets)
    grad = loss.backward()
    assert grad.dtype == np.float32
    # Gradient identity (p - y) / N against the float64 reference.
    loss64 = CrossEntropyLoss()
    loss64(logits.astype(np.float64), targets)
    np.testing.assert_allclose(grad, loss64.backward(), atol=1e-7)
