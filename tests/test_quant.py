"""Quantization: codes, scales, STE fake-quant, activation quantizers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import ActQuant, QuantConfig, Sequential
from repro.nn.layers import Linear
from repro.nn.losses import CrossEntropyLoss
from repro.nn.quant import (
    attach_weight_quantizers,
    dequantize,
    detach_weight_quantizers,
    fake_quantize,
    quantize_symmetric,
)


def test_quant_config_validation():
    with pytest.raises(ValueError):
        QuantConfig(weight_bits=0)
    with pytest.raises(ValueError):
        QuantConfig(weight_bits=4, act_bits=0)
    assert QuantConfig(weight_bits=4).qmax == 15


def test_quantize_roundtrip_error_bounded(rng):
    values = rng.child("v").normal(size=1000)
    codes, scale = quantize_symmetric(values, bits=6)
    assert np.abs(codes).max() <= 63
    recovered = dequantize(codes, scale)
    assert np.abs(recovered - values).max() <= scale / 2 + 1e-12


def test_quantize_zero_tensor():
    codes, scale = quantize_symmetric(np.zeros(5), bits=4)
    np.testing.assert_array_equal(codes, 0)
    assert scale == 1.0


def test_fake_quantize_idempotent(rng):
    values = rng.child("v").normal(size=200).astype(np.float32)
    once = fake_quantize(values, 4)
    twice = fake_quantize(once, 4)
    np.testing.assert_allclose(once, twice, atol=1e-6)


@settings(max_examples=30, deadline=None)
@given(bits=st.integers(1, 10), seed=st.integers(0, 5000))
def test_quantization_error_bound_property(bits, seed):
    values = np.random.default_rng(seed).normal(size=64)
    codes, scale = quantize_symmetric(values, bits=bits)
    assert np.abs(dequantize(codes, scale) - values).max() <= scale / 2 + 1e-12
    assert np.abs(codes).max() <= (1 << bits) - 1


def test_attach_detach_weight_quantizers(rng):
    model = Sequential(
        Linear(4, 8, rng=rng.child("a")), Linear(8, 3, rng=rng.child("b"))
    )
    assert attach_weight_quantizers(model, 4) == 2
    for layer in (model[0], model[1]):
        assert layer.weight_quantizer is not None
        eff = layer.effective_weight()
        codes, scale = quantize_symmetric(layer.weight.data, 4)
        np.testing.assert_allclose(eff, codes * scale, atol=1e-6)
    assert detach_weight_quantizers(model) == 2
    np.testing.assert_array_equal(
        model[0].effective_weight(), model[0].weight.data
    )


def test_ste_gradients_flow_to_master_weights(rng):
    """With fake-quant enabled, weight gradients are still non-zero."""
    model = Sequential(Linear(6, 4, rng=rng.child("l")))
    attach_weight_quantizers(model, 4)
    x = rng.child("x").normal(size=(8, 6)).astype(np.float64)
    y = rng.child("y").integers(0, 4, size=8)
    loss = CrossEntropyLoss()
    loss(model(x), y)
    model.zero_grad()
    model.backward(loss.backward())
    assert np.abs(model[0].weight.grad).max() > 0


def test_act_quant_tracks_range_in_training(rng):
    aq = ActQuant(bits=4)
    aq.train()
    x = rng.child("x").normal(size=(16, 8)).astype(np.float32) * 3
    aq(x)
    assert aq.running_peak > 0
    peak_after_first = aq.running_peak
    aq(x * 2)
    assert aq.running_peak > peak_after_first


def test_act_quant_eval_uses_frozen_range(rng):
    aq = ActQuant(bits=4)
    aq.train()
    aq(np.ones((2, 2), dtype=np.float32))
    frozen = aq.running_peak
    aq.eval()
    aq(np.full((2, 2), 100.0, dtype=np.float32))
    assert aq.running_peak == frozen


def test_act_quant_output_levels_bounded(rng):
    aq = ActQuant(bits=2)
    aq.train()
    x = rng.child("x").normal(size=(64,)).astype(np.float32)
    out = aq(x)
    assert len(np.unique(np.round(out, 5))) <= 2 ** 2 * 2 + 1


def test_act_quant_backward_masks_clipped(rng):
    aq = ActQuant(bits=4)
    aq.train()
    aq(np.ones(4, dtype=np.float32))  # peak = 1
    aq.eval()
    x = np.array([0.5, 2.0, -3.0, 0.1], dtype=np.float32)
    aq(x)
    grad = aq.backward(np.ones_like(x))
    np.testing.assert_array_equal(grad, [1, 0, 0, 1])
    curv = aq.backward_second(np.ones_like(x))
    np.testing.assert_array_equal(curv, [1, 0, 0, 1])


def test_act_quant_passthrough_before_calibration():
    aq = ActQuant(bits=4)
    aq.eval()  # never calibrated: peak = 0 -> identity
    x = np.array([1.5, -2.5], dtype=np.float32)
    np.testing.assert_array_equal(aq(x), x)
