"""Tests for the telemetry subsystem (``repro.obs``).

Three contracts matter most and each gets a direct test here:

- the metrics registry counts *exactly* under thread contention;
- trace spans nest across the ``supervised_map`` fork boundary (worker
  spans re-attach under the span that was open at map entry);
- telemetry never perturbs results — a traced run's CSV bytes and
  cache keys are identical to an untraced run's (subprocess tripwire).
"""

import json
import os
import subprocess
import sys
import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    TRACER,
    ZeroedCounter,
    disable_tracing,
    enable_tracing,
    render_prometheus,
    span,
)
from repro.obs.validate import validate_exposition, validate_spans


@pytest.fixture(autouse=True)
def _tracing_off():
    """Every test starts and ends with tracing disabled and no residue."""
    disable_tracing()
    TRACER.drain()
    yield
    disable_tracing()
    TRACER.drain()


# ------------------------------------------------------------- registry


class TestMetricsRegistry:
    def test_eight_thread_hammer_counts_exactly(self):
        registry = MetricsRegistry()
        counter = registry.counter("hammer_total", "hammered")
        labeled = registry.counter("hammer_by_lane_total", "per lane",
                                   labels=("lane",))
        gauge = registry.gauge("hammer_last", "last value seen")
        hist = registry.histogram("hammer_seconds", "latencies",
                                  buckets=(0.1, 1.0))
        per_thread, threads = 2500, 8
        barrier = threading.Barrier(threads)

        def pound(lane):
            barrier.wait()
            for i in range(per_thread):
                counter.inc()
                labeled.labels(lane=str(lane % 2)).inc(2)
                gauge.set(i)
                hist.observe(0.05 if i % 2 else 5.0)

        pool = [threading.Thread(target=pound, args=(n,)) for n in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()

        total = threads * per_thread
        assert counter.value == total
        assert labeled.labels(lane="0").value == 2 * total // 2
        assert labeled.labels(lane="1").value == 2 * total // 2
        counts, sum_, count = hist.snapshot()
        assert count == total
        assert counts[-1] == total            # +Inf cumulative
        assert counts[0] == total // 2        # 0.05 <= 0.1
        assert sum_ == pytest.approx(total // 2 * 0.05 + total // 2 * 5.0)

    def test_histogram_buckets_are_cumulative_and_le(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h_seconds", "h", buckets=(1.0, 2.0))
        for value in (0.5, 1.0, 1.5, 9.0):
            hist.observe(value)
        counts, _, count = hist.snapshot()
        # value == bound lands in that bucket (le semantics)
        assert counts == (2, 3, 4) and count == 4

    def test_declare_is_idempotent_but_conflicts_raise(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", "x")
        assert registry.counter("x_total", "x") is a
        with pytest.raises(ValueError):
            registry.gauge("x_total", "now a gauge")
        with pytest.raises(ValueError):
            registry.counter("x_total", "x", labels=("route",))

    def test_flat_reproduces_legacy_stats_keys(self):
        registry = MetricsRegistry()
        hits = registry.counter("repro_cache_hits_total", "hits",
                                labels=("tier",))
        hits.labels(tier="memory").inc(3)
        hits.labels(tier="disk").inc(1)
        registry.counter("repro_cache_misses_total", "misses").inc(2)
        registry.gauge("repro_cache_memory_entries", "entries").set(5)
        assert registry.flat("repro_cache_") == {
            "memory": 3, "disk": 1, "misses": 2, "memory_entries": 5,
        }

    def test_zeroed_counter_views_share_one_child(self):
        registry = MetricsRegistry()
        child = registry.counter("c_total", "c")
        child.inc(7)
        view = ZeroedCounter(child)
        assert view.value == 0
        view.inc(2)
        assert view.value == 2 and child.value == 9

    def test_render_is_valid_exposition(self):
        registry = MetricsRegistry()
        registry.counter("r_total", "a counter", labels=("k",)).labels(
            k='sp ce"\\x').inc()
        registry.gauge("r_gauge", "a gauge").set(1.5)
        registry.histogram("r_seconds", "a histogram",
                           buckets=DEFAULT_LATENCY_BUCKETS).observe(0.2)
        text = render_prometheus(registry)
        assert list(validate_exposition(text)) == []
        assert 'le="+Inf"' in text

    def test_render_prometheus_dedups_by_identity(self):
        registry = MetricsRegistry()
        registry.counter("one_total", "one").inc()
        text = render_prometheus(registry, registry)
        assert text.count("# TYPE one_total counter") == 1


# ---------------------------------------------------------------- spans


class TestSpans:
    def test_disabled_span_is_noop_singleton(self):
        first, second = span("a"), span("b")
        assert first is second
        with first:
            pass
        assert TRACER.spans() == []

    def test_nesting_links_parents(self):
        enable_tracing()
        with span("outer") as outer:
            with span("inner", detail=1):
                pass
        spans = {s["name"]: s for s in TRACER.drain()}
        assert spans["inner"]["parent"] == spans["outer"]["id"]
        assert spans["outer"]["parent"] is None
        assert spans["inner"]["attrs"] == {"detail": 1}
        assert spans["outer"]["dur"] >= 0
        assert outer.record["id"] == spans["outer"]["id"]

    def test_exception_is_recorded_and_stack_unwinds(self):
        enable_tracing()
        with pytest.raises(RuntimeError):
            with span("boom"):
                raise RuntimeError("x")
        (record,) = TRACER.drain()
        assert record["attrs"]["error"] == "RuntimeError"
        assert TRACER.current_span_id() is None

    def test_fork_workers_reattach_under_map_entry_span(self):
        from repro.robustness.supervisor import has_fork, supervised_map

        if not has_fork():
            pytest.skip("needs the fork start method")
        enable_tracing()

        def work(item):
            with span("worker.cell", item=item):
                return item * item

        with span("map.entry") as entry:
            result = supervised_map(work, [1, 2, 3], workers=2, backoff=0.0)
        assert result.values == {1: 1, 2: 4, 3: 9}
        spans = TRACER.drain()
        workers = [s for s in spans if s["name"] == "worker.cell"]
        assert len(workers) == 3
        parent_id = entry.record["id"]
        assert {s["parent"] for s in workers} == {parent_id}
        assert any(s["pid"] != os.getpid() for s in workers)
        # shipped spans validate once exported alongside the parent's
        lines = [json.dumps(s) for s in spans]
        assert list(validate_spans(lines)) == []


# ------------------------------------------------------------- validate


class TestValidators:
    def test_validate_spans_flags_problems(self):
        good = {"name": "a", "id": "1", "parent": None, "start": 0.0,
                "dur": 0.1, "pid": 1}
        assert list(validate_spans([json.dumps(good)])) == []
        problems = list(validate_spans([
            "not json",
            json.dumps({"name": "b"}),
            json.dumps(dict(good, id="2", parent="missing")),
        ]))
        assert [line for line, _ in problems] == [1, 2, 3]

    def test_validate_exposition_flags_malformed_lines(self):
        assert list(validate_exposition("# HELP a_total ok\n"
                                        "# TYPE a_total counter\n"
                                        "a_total 3\n")) == []
        bad = list(validate_exposition("not a metric line!\n"))
        assert bad and bad[0][0] == 1


# ------------------------------------------- tripwire: bytes unperturbed


def _runner_env(tmp_path, **extra):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = (
        os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    )
    env["REPRO_RESULTS_DIR"] = str(tmp_path / "results")
    env["REPRO_SCALE"] = "smoke"
    env.update({k: str(v) for k, v in extra.items()})
    return env


def _runner(args, env):
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments.runner", *args],
        env=env, capture_output=True, text=True, timeout=900,
    )


def _cache_keys(cache_dir):
    keys = set()
    for root, _, files in os.walk(cache_dir):
        for name in files:
            rel = os.path.relpath(os.path.join(root, name), cache_dir)
            keys.add(rel)
    return keys


class TestTracingIsInert:
    def test_traced_run_matches_untraced_bytes_and_cache_keys(self, tmp_path):
        """`--trace` must not leak into results or cache keys: the CSV
        bytes and the content-addressed artifact set are identical with
        tracing on and off."""
        plain = _runner(
            ["retention"],
            _runner_env(tmp_path / "plain",
                        REPRO_CACHE_DIR=str(tmp_path / "cache_plain")),
        )
        assert plain.returncode == 0, plain.stderr[-2000:]
        trace_path = tmp_path / "trace.jsonl"
        traced = _runner(
            ["retention", "--trace", str(trace_path)],
            _runner_env(tmp_path / "traced",
                        REPRO_CACHE_DIR=str(tmp_path / "cache_traced")),
        )
        assert traced.returncode == 0, traced.stderr[-2000:]

        plain_csv = tmp_path / "plain" / "results" / "retention.csv"
        traced_csv = tmp_path / "traced" / "results" / "retention.csv"
        assert plain_csv.read_bytes() == traced_csv.read_bytes()
        assert _cache_keys(tmp_path / "cache_plain") == _cache_keys(
            tmp_path / "cache_traced"
        )

        with open(trace_path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        assert lines, "traced run wrote no spans"
        assert list(validate_spans(lines)) == []
        names = {json.loads(line)["name"] for line in lines}
        assert "runner.retention" in names
        assert (tmp_path / "trace.chrome.json").exists()
