"""End-to-end smoke: the CLI runner produces CSV artifacts via subprocess.

Exercises the real entry point (``python -m repro.experiments.runner``)
the way CI and users invoke it, including the ``REPRO_RESULTS_DIR``
artifact contract and the trial-batched sweep path that the runner uses
by default.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest


def _run_runner(results, *experiments, extra_args=()):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_RESULTS_DIR"] = str(results)
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments.runner", *experiments,
         "--scale", "smoke", *extra_args],
        env=env,
        capture_output=True,
        text=True,
        timeout=900,
    )


@pytest.mark.slow
def test_runner_table1_smoke_writes_csvs(tmp_path):
    results = tmp_path / "results"
    proc = _run_runner(results, "table1")
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "Table 1" in proc.stdout

    csvs = sorted(p.name for p in results.glob("table1_sigma*.csv"))
    assert csvs == [
        "table1_sigma0.1.csv",
        "table1_sigma0.15.csv",
        "table1_sigma0.2.csv",
    ]
    header = (results / csvs[0]).read_text(encoding="utf-8").splitlines()[0]
    assert header.startswith("workload,sigma,method")


@pytest.mark.slow
def test_runner_devices_retention_smoke_writes_csvs(tmp_path):
    """The device-stack scenarios run green end to end from the CLI."""
    results = tmp_path / "results"
    proc = _run_runner(results, "devices", "retention")
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "Technology summary" in proc.stdout
    assert "Retention — pcm" in proc.stdout
    assert "Retention — pcm-comp" in proc.stdout

    devices = (results / "devices.csv").read_text(encoding="utf-8").splitlines()
    assert devices[0].startswith("technology,workload,sigma,method")
    technologies = {line.split(",")[0] for line in devices[1:]}
    assert technologies >= {"fefet", "rram", "pcm", "mram"}

    retention = (results / "retention.csv").read_text(encoding="utf-8").splitlines()
    assert retention[0].startswith(
        "read_time_s,technology,workload,sigma,method"
    )
    times = {float(line.split(",")[0]) for line in retention[1:]}
    assert len(times) >= 2 and 1.0 in times
    retention_technologies = {line.split(",")[1] for line in retention[1:]}
    assert retention_technologies == {"pcm", "pcm-comp"}
    methods = {line.split(",")[4] for line in retention[1:]}
    assert "hetero_swim" in methods and "swim" in methods


@pytest.mark.slow
def test_runner_spatial_smoke_csv_schema_and_determinism(tmp_path):
    """The clustered-variation stress test: schema contract + fixed seed."""
    results = tmp_path / "results"
    proc = _run_runner(results, "spatial")
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "Spatial — fefet-spatial" in proc.stdout

    spatial = (results / "spatial.csv").read_text(encoding="utf-8")
    lines = spatial.splitlines()
    assert lines[0] == (
        "correlation_length,technology,workload,sigma,method,nwc_target,"
        "achieved_nwc,accuracy_mean,accuracy_std,runs"
    )
    lengths = {float(line.split(",")[0]) for line in lines[1:]}
    assert lengths == {0.0, 8.0}  # the smoke preset's grid
    methods = {line.split(",")[4] for line in lines[1:]}
    assert methods == {"swim", "hetero_swim", "magnitude"}
    for line in lines[1:]:
        fields = line.split(",")
        assert len(fields) == 10
        assert 0.0 <= float(fields[7]) <= 1.0  # accuracy_mean

    # Deterministic under the fixed seed: a second run reproduces the
    # CSV byte for byte (the model comes back from the artifact cache,
    # and every stochastic stage draws from named streams).
    rerun = tmp_path / "rerun"
    proc2 = _run_runner(rerun, "spatial")
    assert proc2.returncode == 0, proc2.stderr[-2000:]
    assert (rerun / "spatial.csv").read_text(encoding="utf-8") == spatial


@pytest.mark.slow
def test_runner_retention_parallel_jobs_byte_identical(tmp_path):
    """``--jobs 2`` reproduces the serial scenario CSV byte for byte.

    The orchestrator fans the (technology, read time) cells over a fork
    pool, but every cell derives all randomness from its own named
    streams — so the parallel CSV must be identical, not just close.
    The run also exercises ``--save-plans`` (the offline plan artifact).
    """
    serial = tmp_path / "serial"
    proc = _run_runner(serial, "retention")
    assert proc.returncode == 0, proc.stderr[-2000:]

    parallel = tmp_path / "parallel"
    proc2 = _run_runner(parallel, "retention",
                        extra_args=("--jobs", "2", "--save-plans"))
    assert proc2.returncode == 0, proc2.stderr[-2000:]

    serial_csv = (serial / "retention.csv").read_bytes()
    assert serial_csv == (parallel / "retention.csv").read_bytes()
    assert len(serial_csv) > 0

    plans = (parallel / "retention_plans.json").read_text(encoding="utf-8")
    assert '"orders"' in plans and "pcm" in plans
