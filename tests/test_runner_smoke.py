"""End-to-end smoke: the CLI runner produces CSV artifacts via subprocess.

Exercises the real entry point (``python -m repro.experiments.runner``)
the way CI and users invoke it, including the ``REPRO_RESULTS_DIR``
artifact contract and the trial-batched sweep path that the runner uses
by default.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest


def _run_runner(results, *experiments):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_RESULTS_DIR"] = str(results)
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments.runner", *experiments,
         "--scale", "smoke"],
        env=env,
        capture_output=True,
        text=True,
        timeout=900,
    )


@pytest.mark.slow
def test_runner_table1_smoke_writes_csvs(tmp_path):
    results = tmp_path / "results"
    proc = _run_runner(results, "table1")
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "Table 1" in proc.stdout

    csvs = sorted(p.name for p in results.glob("table1_sigma*.csv"))
    assert csvs == [
        "table1_sigma0.1.csv",
        "table1_sigma0.15.csv",
        "table1_sigma0.2.csv",
    ]
    header = (results / csvs[0]).read_text(encoding="utf-8").splitlines()[0]
    assert header.startswith("workload,sigma,method")


@pytest.mark.slow
def test_runner_devices_retention_smoke_writes_csvs(tmp_path):
    """The device-stack scenarios run green end to end from the CLI."""
    results = tmp_path / "results"
    proc = _run_runner(results, "devices", "retention")
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "Technology summary" in proc.stdout
    assert "Retention — pcm" in proc.stdout

    devices = (results / "devices.csv").read_text(encoding="utf-8").splitlines()
    assert devices[0].startswith("technology,workload,sigma,method")
    technologies = {line.split(",")[0] for line in devices[1:]}
    assert technologies >= {"fefet", "rram", "pcm", "mram"}

    retention = (results / "retention.csv").read_text(encoding="utf-8").splitlines()
    assert retention[0].startswith("read_time_s,workload,sigma,method")
    times = {float(line.split(",")[0]) for line in retention[1:]}
    assert len(times) >= 2 and 1.0 in times
