"""Physical crossbar execution: tiles, bit slices, DAC/ADC quantization.

The Monte Carlo experiments use an effective-weight shortcut; this example
runs the *explicit* tile path on a trained layer and shows (a) exact
agreement with the shortcut under ideal converters, and (b) how ADC
resolution degrades the result — the knob a real ISAAC-style design must
budget for.

Run:  python examples/crossbar_inference.py
"""

import numpy as np

from repro.cim import (
    ConverterConfig,
    CrossbarConfig,
    CrossbarLinear,
    DeviceConfig,
    MappingConfig,
    WeightMapper,
)
from repro.data import synthetic_digits
from repro.nn import SGD, TrainConfig, Trainer, evaluate_accuracy
from repro.nn.models import mlp
from repro.utils.rng import RngStream


def main():
    root = RngStream(123)
    data = synthetic_digits(n_train=800, n_test=300, rng=root.child("data"))
    model = mlp(root.child("model"), (784, 48, 10), flatten_input=True)
    Trainer(SGD(model.parameters(), lr=0.05, momentum=0.9),
            rng=root.child("train")).fit(
        model, data.train_x, data.train_y,
        config=TrainConfig(epochs=6, batch_size=64),
    )
    print(f"float accuracy: "
          f"{100 * evaluate_accuracy(model, data.test_x, data.test_y):.2f}%")

    # Take the first Linear layer and execute it on crossbar tiles.
    first_linear = model[1]  # [0] is Flatten
    weights = first_linear.weight.data
    mapping = MappingConfig(weight_bits=6, device=DeviceConfig(bits=3, sigma=0.05))
    mapper = WeightMapper(mapping)
    mapped = mapper.map_tensor(weights)
    programmed = mapper.program_levels(mapped, root.child("prog").generator)

    x = data.test_x[:128].reshape(128, -1).astype(np.float64)
    x = np.clip(x, -1, 1)  # DAC full-scale

    print(f"\nlayer: {weights.shape[0]}x{weights.shape[1]} weights, "
          f"{mapping.num_slices} slices/weight, 128-row tiles")
    print(f"{'ADC bits':>9} | {'rms error vs shortcut':>22}")
    reference = None
    for adc_bits in (4, 6, 8, 10, None):
        xbar = CrossbarLinear(
            weights,
            mapping_config=mapping,
            crossbar_config=CrossbarConfig(
                rows=128,
                dac=ConverterConfig(bits=None),  # isolate the ADC effect
                adc=ConverterConfig(bits=adc_bits),
            ),
            programmed_levels=programmed,
            bias=first_linear.bias.data,
        )
        out = xbar(x)
        if reference is None:
            shortcut = x @ xbar.effective_weights().T + first_linear.bias.data
        rms = float(np.sqrt(np.mean((out - shortcut) ** 2)))
        label = "ideal" if adc_bits is None else str(adc_bits)
        print(f"{label:>9} | {rms:22.6f}")

    print("\nwith an ideal ADC the tile path equals the effective-weight "
          "shortcut exactly,\nwhich is why the Monte Carlo experiments can "
          "use the shortcut (see tests/test_crossbar.py).")


if __name__ == "__main__":
    main()
