"""Deployment lifetime and wall-clock cost of a SWIM-programmed chip.

Combines three substrate extensions around the paper's core result:

1. the physical cost model — what NWC savings mean in hours (the paper's
   "a week for ResNet-18" headline);
2. spatially correlated fabrication variation — clustered, not i.i.d.,
   errors on the unverified weights;
3. retention drift — accuracy decay in the days after programming, for a
   fully verified vs a SWIM-10% chip.

Run:  python examples/lifetime_and_cost.py
"""

import numpy as np

from repro.cim import (
    CimAccelerator,
    CostModel,
    DeviceConfig,
    MappingConfig,
    RetentionModel,
    SpatialVariationModel,
)
from repro.core import SwimScorer, WeightSpace, evaluate_accuracy
from repro.experiments.config import SMOKE
from repro.experiments.model_zoo import load_workload
from repro.utils.rng import RngStream


def main():
    zoo = load_workload(SMOKE.workload("lenet-digits"))
    data = zoo.data
    rng = RngStream(33).child("lifetime")

    # --- 1. what would this cost on real hardware?
    cost = CostModel()
    n = zoo.model.num_parameters()
    full = cost.estimate_full_write_verify(n)
    swim = cost.speedup_report(n, nwc=0.1)
    print("== programming cost (5 ms/effective cycle) ==")
    print(f"this LeNet ({n} weights): full write-verify {full['human']}, "
          f"SWIM@0.1 {swim['selective_human']}")
    resnet = cost.estimate_full_write_verify(1.12e7)
    print(f"paper-scale ResNet-18 (1.12e7 weights): {resnet['human']} "
          f"(paper: 'more than one week')")

    # --- 2. program with SWIM, then watch the chip age.
    mapping = MappingConfig(weight_bits=zoo.spec.weight_bits,
                            device=DeviceConfig(bits=4, sigma=0.1))
    accelerator = CimAccelerator(zoo.model, mapping_config=mapping)
    space = WeightSpace.from_model(zoo.model)
    accelerator.program(rng.child("p").generator)
    accelerator.write_verify_all(rng.child("wv").generator)
    order = SwimScorer(max_batches=2).ranking(
        zoo.model, space, data.train_x[:256], data.train_y[:256]
    )
    nwc = accelerator.apply_selection(
        space.masks_from_indices(order[: int(0.1 * space.total_size)])
    )
    deployed = {name: layer.weight_override.copy()
                for name, layer in accelerator._layers.items()}
    print(f"\n== aging a SWIM-programmed chip (NWC={nwc:.2f}) ==")
    retention = RetentionModel(nu=0.01, sigma_nu=0.004, relaxation_sigma=0.004)
    for label, t in (("at t0", 1.0), ("after 1 day", 86400.0),
                     ("after 30 days", 30 * 86400.0)):
        drift_rng = rng.child("drift", label).generator
        for name, layer in accelerator._layers.items():
            mapped = accelerator._mapped[name]
            codes = deployed[name] / mapped.scale
            drifted = retention.apply(
                np.abs(codes), t, drift_rng, device_max_level=mapping.qmax
            ) * np.sign(codes)
            layer.set_weight_override(
                (drifted * mapped.scale).astype(layer.weight.data.dtype))
        acc = evaluate_accuracy(zoo.model, data.test_x, data.test_y)
        print(f"  {label:14s}: {100 * acc:.2f}%")

    # --- 3. how do correlated fabrication errors compare to i.i.d.?
    print("\n== unverified floor: i.i.d. vs spatially correlated noise ==")
    from repro.cim import WeightMapper
    mapper = WeightMapper(mapping)
    for label, model_ in (
        ("i.i.d.", SpatialVariationModel(sigma=0.1, correlation_length=0.0,
                                         global_fraction=0.0)),
        ("correlated", SpatialVariationModel(sigma=0.1,
                                             correlation_length=8.0,
                                             global_fraction=0.3)),
    ):
        accs = []
        for trial in range(3):
            gen = rng.child("field", label, trial).generator
            for name, layer in accelerator._layers.items():
                mapped = accelerator._mapped[name]
                field = model_.sample_field(
                    mapped.codes.size, gen, device_max_level=mapping.qmax
                ).reshape(mapped.codes.shape)
                noisy = (mapped.codes + field) * mapped.scale
                layer.set_weight_override(
                    noisy.astype(layer.weight.data.dtype))
            accs.append(evaluate_accuracy(zoo.model, data.test_x, data.test_y))
        print(f"  {label:11s}: {100 * np.mean(accs):.2f}% "
              f"(± {100 * np.std(accs):.2f} across chips)")
    accelerator.clear()


if __name__ == "__main__":
    main()
