"""Bring your own device: map a model onto a custom NVM technology.

Shows the substrate's extension points:

- a 2-bit multi-level cell with high programming noise (an immature
  technology, per the paper's "certain emerging technologies may lead to
  higher variations");
- write-verify pulse dynamics re-calibrated for that device with
  ``calibrate_alpha`` (targeting a chosen mean-cycle budget);
- the closed-form Eq. 16 noise prediction vs measured statistics;
- differential-column mapping (sign carried by a device pair).

Run:  python examples/custom_device.py
"""

import numpy as np

from repro.cim import (
    CimAccelerator,
    DeviceConfig,
    MappingConfig,
    WeightMapper,
    WriteVerifyConfig,
    calibrate_alpha,
    write_verify,
)
from repro.data import synthetic_digits
from repro.nn import SGD, TrainConfig, Trainer, evaluate_accuracy
from repro.nn.models import mlp
from repro.utils.rng import RngStream


def main():
    root = RngStream(99)

    # An immature 2-bit cell: only 4 levels, 18% full-scale write noise.
    device = DeviceConfig(bits=2, sigma=0.18)
    mapping = MappingConfig(weight_bits=6, device=device, differential=True)
    print("== custom device ==")
    print(f"levels/device        : {device.levels}")
    print(f"slices per 6-bit wt  : {mapping.num_slices}")
    print(f"Eq.16 noise (codes)  : {mapping.code_noise_std():.3f}")
    print(f"relative noise (FS)  : {100 * mapping.relative_noise_std():.1f}%")

    # Validate Eq. 16 against the per-device simulation.
    mapper = WeightMapper(mapping)
    gen = root.child("check").generator
    weights = gen.normal(size=20000) * 0.3
    mapped = mapper.map_tensor(weights)
    programmed = mapper.program_levels(mapped, gen)
    errors = mapper.assemble_codes(programmed, mapped.signs) - mapped.codes
    print(f"measured code noise  : {errors.std():.3f} "
          f"(closed form {mapping.code_noise_std():.3f})")

    # Re-calibrate the write-verify pulse strength for a 12-cycle budget.
    print("\n== write-verify calibration for this device ==")
    alpha, achieved = calibrate_alpha(
        device, target_mean_cycles=12.0, tolerance=0.08, n_devices=8000
    )
    print(f"fitted pulse alpha   : {alpha:.4f}")
    print(f"achieved mean cycles : {achieved:.1f}")
    wv_config = WriteVerifyConfig(tolerance=0.08, alpha=alpha)
    targets = gen.uniform(0, device.max_level, size=20000)
    result = write_verify(targets, device.program(targets, gen), device,
                          wv_config, gen)
    residual = (result.levels - targets) / device.max_level
    print(f"post-verify residual : {100 * residual.std():.1f}% FS "
          f"(tolerance {100 * wv_config.tolerance:.0f}%)")

    # Map a small trained model and measure the accuracy cliff + recovery.
    print("\n== end-to-end on a small MLP classifier ==")
    data = synthetic_digits(n_train=800, n_test=300, rng=root.child("data"))
    model = mlp(root.child("model"), (784, 64, 10), flatten_input=True)
    Trainer(SGD(model.parameters(), lr=0.05, momentum=0.9),
            rng=root.child("train")).fit(
        model, data.train_x, data.train_y,
        config=TrainConfig(epochs=6, batch_size=64),
    )
    clean = evaluate_accuracy(model, data.test_x, data.test_y)

    accelerator = CimAccelerator(model, mapping_config=mapping,
                                 wv_config=wv_config)
    run_rng = root.child("map")
    accelerator.program(run_rng.child("p").generator)
    accelerator.write_verify_all(run_rng.child("wv").generator)

    accelerator.apply_none()
    noisy = evaluate_accuracy(model, data.test_x, data.test_y)
    accelerator.apply_all()
    verified = evaluate_accuracy(model, data.test_x, data.test_y)
    print(f"clean accuracy       : {100 * clean:.2f}%")
    print(f"unverified mapping   : {100 * noisy:.2f}%")
    print(f"fully write-verified : {100 * verified:.2f}%")
    accelerator.clear()


if __name__ == "__main__":
    main()
