"""Method comparison: SWIM vs Magnitude vs Random vs In-situ on one chip.

Reproduces a single-sigma slice of the paper's Table 1 with an ASCII
accuracy-vs-NWC figure, using the paired Monte Carlo design (all methods
see the same programming-noise draws).

Run:  python examples/method_comparison.py [sigma]
"""

import sys

from repro.experiments.config import SMOKE
from repro.experiments.model_zoo import load_workload
from repro.experiments.sweeps import run_method_sweep
from repro.utils.ascii_plot import line_plot
from repro.utils.rng import RngStream


def main(sigma=0.15):
    print(f"== accuracy vs NWC at sigma={sigma} (LeNet / synthetic digits) ==")
    zoo = load_workload(SMOKE.workload("lenet-digits"))
    print(f"model: {zoo.spec.arch}, {zoo.model.num_parameters()} parameters, "
          f"clean accuracy {100 * zoo.clean_accuracy:.2f}%")

    outcome = run_method_sweep(
        zoo,
        sigma=sigma,
        nwc_targets=(0.0, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 1.0),
        mc_runs=3,
        rng=RngStream(7).child("compare"),
        eval_samples=200,
        sense_samples=256,
    )

    series = {
        method: (curve.achieved_nwc, 100.0 * curve.means())
        for method, curve in outcome.curves.items()
    }
    print(line_plot(
        series,
        title=f"accuracy vs NWC (sigma={sigma})",
        xlabel="Normalized Write Cycles",
        ylabel="accuracy %",
    ))

    print("\nmean accuracy at each NWC target:")
    header = "method     " + "".join(f"{t:>8.2f}" for t in outcome.nwc_targets)
    print(header)
    for method, curve in outcome.curves.items():
        row = f"{method:10s}" + "".join(f"{100 * m:8.2f}" for m in curve.means())
        print(row)

    swim = outcome.curve("swim").means()
    random = outcome.curve("random").means()
    print(f"\nat NWC=0.1: SWIM {100 * swim[2]:.2f}% vs Random "
          f"{100 * random[2]:.2f}%  (paper: SWIM needs ~9x fewer cycles "
          f"than random selection for equal accuracy)")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.15)
