"""Budget duel: SWIM's selective write-verify vs on-chip in-situ training.

Both start from the same freshly programmed (noisy, unverified) chip.
SWIM spends its write budget verifying the most curvature-sensitive
weights; in-situ training spends it on unverified SGD update pulses.  The
printout shows accuracy as a function of write cycles for both — the
paper's Sec. 4.3 finds SWIM ~9x cheaper at matched accuracy, with in-situ
only catching up at NWC >> 1.

Run:  python examples/insitu_vs_swim.py
"""

from repro.cim import CimAccelerator, DeviceConfig, MappingConfig
from repro.core import (
    InSituConfig,
    InSituTrainer,
    SwimScorer,
    WeightSpace,
    evaluate_accuracy,
)
from repro.experiments.config import SMOKE
from repro.experiments.model_zoo import load_workload
from repro.utils.rng import RngStream


def main():
    zoo = load_workload(SMOKE.workload("lenet-digits"))
    data = zoo.data
    rng = RngStream(55).child("duel")
    sigma = 0.15
    mapping = MappingConfig(weight_bits=zoo.spec.weight_bits,
                            device=DeviceConfig(bits=4, sigma=sigma))
    accelerator = CimAccelerator(zoo.model, mapping_config=mapping)
    space = WeightSpace.from_model(zoo.model)
    eval_x, eval_y = data.test_x, data.test_y

    print(f"clean accuracy: {100 * zoo.clean_accuracy:.2f}%  (sigma={sigma})")

    # --- SWIM side: one program+verify simulation, growing selection.
    accelerator.program(rng.child("p").generator)
    accelerator.write_verify_all(rng.child("wv").generator)
    order = SwimScorer(max_batches=2).ranking(
        zoo.model, space, data.train_x[:256], data.train_y[:256]
    )
    print("\nSWIM: accuracy vs write budget")
    for fraction in (0.0, 0.05, 0.1, 0.2, 0.5, 1.0):
        count = int(round(fraction * space.total_size))
        nwc = accelerator.apply_selection(
            space.masks_from_indices(order[:count])
        )
        acc = evaluate_accuracy(zoo.model, eval_x, eval_y)
        print(f"  NWC {nwc:5.2f} -> {100 * acc:6.2f}%")

    # --- In-situ side: fresh programming, on-chip SGD with pulse noise.
    trainer = InSituTrainer(zoo.model, accelerator,
                            InSituConfig(lr=0.01, batch_size=64))
    trainer.initialize(rng.child("insitu"))
    floor = evaluate_accuracy(zoo.model, eval_x, eval_y)
    print("\nIn-situ training: accuracy vs write budget")
    print(f"  NWC  0.00 -> {100 * floor:6.2f}%")
    done = 0
    for target in (0.1, 0.3, 0.5, 1.0, 2.0):
        needed = trainer.iterations_for_nwc(target)
        extra = max(needed - done, 1)
        history = trainer.run(
            data.train_x, data.train_y, extra,
            rng.child("run", str(target)),
            eval_x=eval_x, eval_y=eval_y,
        )
        done += extra
        print(f"  NWC {trainer.nwc:5.2f} -> {100 * history.accuracy[-1]:6.2f}%")

    accelerator.clear()
    print("\nSWIM reaches the write-verify plateau with ~10% of the cycles;"
          "\nin-situ needs several times the full-verify budget (paper: 32x"
          "\non LeNet) and extra training hardware.")


if __name__ == "__main__":
    main()
