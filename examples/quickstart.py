"""Quickstart: train a model, map it to a CiM accelerator, run SWIM.

This walks the full pipeline of the paper in ~a minute on a laptop CPU:

1. generate a synthetic digit dataset and train LeNet on it;
2. quantize + map the weights onto simulated 4-bit NVM devices with
   programming noise (sigma = 0.15 full-scale);
3. run SWIM's Algorithm 1: rank weights by second-derivative sensitivity
   and write-verify only as many groups as needed to restore accuracy.

Run:  python examples/quickstart.py
"""

from repro.cim import CimAccelerator, DeviceConfig, MappingConfig
from repro.core import SwimConfig, SwimScorer, selective_write_verify
from repro.data import synthetic_digits
from repro.nn import SGD, TrainConfig, Trainer, cosine_schedule, evaluate_accuracy
from repro.nn.models import lenet
from repro.utils.rng import RngStream


def main():
    root = RngStream(seed=42)

    # 1. Data + training (QAT: 4-bit weights via straight-through fake quant).
    print("== 1. training LeNet on synthetic digits ==")
    data = synthetic_digits(n_train=1500, n_test=500, rng=root.child("data"))
    model = lenet(root.child("model"), act_bits=4)
    trainer = Trainer(
        SGD(model.parameters(), lr=0.03, momentum=0.9),
        schedule=cosine_schedule(0.03, 8),
        rng=root.child("train"),
    )
    trainer.fit(
        model, data.train_x, data.train_y,
        config=TrainConfig(epochs=8, batch_size=64, weight_bits=4),
    )
    clean = evaluate_accuracy(model, data.test_x, data.test_y)
    print(f"clean (quantized) accuracy: {100 * clean:.2f}%")

    # 2. Map onto the CiM substrate.
    print("\n== 2. mapping onto 4-bit NVM devices (sigma = 0.15) ==")
    mapping = MappingConfig(
        weight_bits=4, device=DeviceConfig(bits=4, sigma=0.15)
    )
    accelerator = CimAccelerator(model, mapping_config=mapping)
    print(f"mapped weights: {accelerator.num_weights()}")
    print(f"expected mapped-weight noise: "
          f"{100 * mapping.relative_noise_std():.1f}% of full scale")

    # 3. SWIM's selective write-verify (Algorithm 1).
    print("\n== 3. SWIM Algorithm 1 (delta_A = 0.5%) ==")
    result = selective_write_verify(
        model,
        accelerator,
        SwimScorer(max_batches=2),
        data.test_x, data.test_y,
        baseline_accuracy=clean,
        config=SwimConfig(delta_a=0.005, granularity=0.05),
        rng=root.child("swim"),
        sense_x=data.train_x[:512], sense_y=data.train_y[:512],
    )
    print(f"write-verified weights : {100 * result.selected_fraction:.1f}%")
    print(f"write cycles spent     : {100 * result.achieved_nwc:.1f}% of "
          f"full write-verify (≈{1 / max(result.achieved_nwc, 1e-9):.0f}x speedup)")
    print(f"deployed accuracy      : {100 * result.achieved_accuracy:.2f}% "
          f"(target met: {result.met_target})")
    print("\naccuracy trace as groups were verified:")
    for nwc, acc in zip(result.nwc_history, result.accuracy_history):
        print(f"  NWC {nwc:5.2f} -> {100 * acc:.2f}%")
    accelerator.clear()


if __name__ == "__main__":
    main()
